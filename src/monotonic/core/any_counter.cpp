// any_counter.cpp — kind names and the spec-string factory.
//
// The recursive builder is the interesting part: every decorator layer
// wraps the layer beneath it through AnyHandle, so the same generic
// templates (Traced<C>, Batching<C>, Broadcasting<C>) serve both
// compile-time composition and runtime spec strings.  A broadcast
// layer re-runs the builder once per shard, giving each shard its own
// private copy of the inner stack.
//
// A "sharded[:N]" prefix is not a decorator: it selects the striped
// value plane *inside* the base counter (BasicCounter<Policy,
// StripedPlane>), so it is parsed off the front before the base and
// re-printed first in the canonical spec.  An explicit ":N" is always
// printed; the auto stripe count (sized from hardware_concurrency) is
// never printed, so canonical specs stay machine-independent.
//
// Spec errors throw std::invalid_argument with a message naming the
// offending token — "hybrid+traced+traced" reports the duplicated
// 'traced', not a generic parse failure — because specs arrive from
// command lines and config files where "something was wrong" is
// useless.

#include "monotonic/core/any_counter.hpp"

#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "monotonic/core/broadcast_counter.hpp"
#include "monotonic/core/completion.hpp"
#include "monotonic/core/counter.hpp"
#include "monotonic/core/counter_decorator.hpp"
#include "monotonic/core/futex_counter.hpp"
#include "monotonic/core/hybrid_counter.hpp"
#include "monotonic/core/shared_counter.hpp"
#include "monotonic/core/spin_counter.hpp"
#include "monotonic/support/trace.hpp"

namespace monotonic {

std::string_view to_string(CounterKind kind) {
  switch (kind) {
    case CounterKind::kList:
      return "list";
    case CounterKind::kListNoPool:
      return "list-nopool";
    case CounterKind::kSingleCv:
      return "single-cv";
    case CounterKind::kFutex:
      return "futex";
    case CounterKind::kSpin:
      return "spin";
    case CounterKind::kHybrid:
      return "hybrid";
    case CounterKind::kShared:
      return "shared";
  }
  return "?";
}

CounterKind counter_kind_from_string(std::string_view name) {
  for (CounterKind k : all_counter_kinds()) {
    if (to_string(k) == name) return k;
  }
  throw std::invalid_argument("unknown counter kind '" + std::string(name) +
                              "'");
}

const std::vector<CounterKind>& all_counter_kinds() {
  static const std::vector<CounterKind> kinds = {
      CounterKind::kList,  CounterKind::kListNoPool, CounterKind::kSingleCv,
      CounterKind::kFutex, CounterKind::kSpin,       CounterKind::kHybrid};
  return kinds;
}

std::string_view counter_spec_help() {
  return "[sharded[:N]+][pooled[:N]+]kind[,opt=val...]"
         "[+decorator[,opt=val...]]... — kinds: list, list-nopool, "
         "single-cv, futex, spin, hybrid; sharded[:N] stripes the value "
         "plane (bare 'sharded' = sharded+hybrid); pooled[:N] "
         "preallocates N wait nodes (default 64; bare 'pooled' = "
         "pooled+hybrid); base opts: pool=0|1, pool_size=N, "
         "max_waiters=N, max_levels=N, overload=throw|spin|block, "
         "waitplane=list|heap[:S] (S = level shards of the heap wait "
         "plane, 1..64), "
         "executor=inline|pool[:N] (where OnReach callbacks run: inline "
         "on the incrementing thread — the default — or a completion "
         "thread pool of N workers, default 1); "
         "decorators: traced, batching[,batch=N], broadcast[,shards=N] "
         "(each at most once); cross-process: shared:/name[,detect=MS]"
         "[,stale=MS][+futex] attaches every process naming the same "
         "/name to one shm-backed counter (detect = death-detector "
         "period, default 100 ms; stale = opt-in heartbeat staleness "
         "backstop, default off; '+futex' is accepted and redundant — "
         "the shared wait plane is always the futex word)";
}

namespace {

/// All spec diagnostics funnel through here so every failure names the
/// token that caused it and carries the same exception type as
/// MC_REQUIRE (std::invalid_argument).
[[noreturn]] void spec_error(const std::string& msg) {
  throw std::invalid_argument("counter spec: " + msg);
}

struct SpecPart {
  std::string name;
  std::vector<std::pair<std::string, std::string>> options;
};

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

std::vector<SpecPart> parse_spec(std::string_view spec) {
  std::vector<SpecPart> parts;
  for (const std::string& chunk : split(spec, '+')) {
    const std::vector<std::string> tokens = split(chunk, ',');
    if (tokens.empty() || tokens.front().empty()) {
      spec_error("empty component in '" + std::string(spec) + "'");
    }
    SpecPart part;
    part.name = tokens.front();
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const std::string& tok = tokens[i];
      const std::size_t eq = tok.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= tok.size()) {
        spec_error("option '" + tok + "' must be key=value");
      }
      part.options.emplace_back(trim(tok.substr(0, eq)),
                                trim(tok.substr(eq + 1)));
    }
    parts.push_back(std::move(part));
  }
  return parts;
}

std::uint64_t parse_uint(const std::string& key, const std::string& value) {
  if (value.empty()) spec_error("option '" + key + "' needs a numeric value");
  std::uint64_t out = 0;
  for (char c : value) {
    if (c < '0' || c > '9') {
      spec_error("option '" + key + "' value '" + value + "' is not numeric");
    }
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return out;
}

/// Value-independent monotone-predicate reduction (the same gallop +
/// bisect BasicCounter::predicate_level runs), for adapters whose
/// wrapped counter lacks a native Check(pred) — currently the shared
/// counter, whose predicate support lives process-side.
counter_value_t reduce_predicate(
    const std::function<bool(counter_value_t)>& pred, counter_value_t cap) {
  if (pred(0)) return 0;
  MC_REQUIRE(pred(cap),
             "Check(pred): predicate is false at the maximum counter "
             "value, so it can never be signalled (is it monotone?)");
  counter_value_t lo = 0;
  counter_value_t hi = 1;
  while (hi < cap && !pred(hi)) {
    lo = hi;
    hi = hi <= cap / 2 ? hi * 2 : cap;
  }
  while (hi - lo > 1) {
    const counter_value_t mid = lo + (hi - lo) / 2;
    (pred(mid) ? hi : lo) = mid;
  }
  return hi;
}

bool is_shard_token(const std::string& name) {
  return name == "sharded" || name.rfind("sharded:", 0) == 0;
}

bool is_pool_token(const std::string& name) {
  return name == "pooled" || name.rfind("pooled:", 0) == 0;
}

struct ShardPrefix {
  bool sharded = false;
  std::size_t stripes = 0;  ///< 0 = auto (hardware_concurrency)
};

/// Consumes a leading "sharded" / "sharded:N" component.  Bare
/// "sharded" with nothing after it means "sharded+hybrid", so a hybrid
/// base part is synthesized in that case.
ShardPrefix take_shard_prefix(std::vector<SpecPart>& parts) {
  ShardPrefix out;
  if (parts.empty() || !is_shard_token(parts.front().name)) return out;
  const SpecPart part = std::move(parts.front());
  parts.erase(parts.begin());
  out.sharded = true;
  if (!part.options.empty()) {
    spec_error(
        "'sharded' takes no key=value options; fix the stripe count "
        "with 'sharded:N'");
  }
  if (part.name != "sharded") {
    const std::string digits =
        part.name.substr(std::string("sharded:").size());
    const std::uint64_t n = parse_uint("sharded:N", digits);
    if (n < 1) spec_error("'" + part.name + "' needs at least one stripe");
    out.stripes = static_cast<std::size_t>(n);
  }
  if (parts.empty()) {
    SpecPart hybrid;
    hybrid.name = "hybrid";
    parts.push_back(std::move(hybrid));
  }
  return out;
}

struct PoolPrefix {
  bool pooled = false;
  std::size_t nodes = 0;
};

/// Consumes a leading "pooled" / "pooled:N" component (after any shard
/// prefix — canonical order is sharded+pooled+base).  Bare "pooled"
/// preallocates the default 64 nodes; like bare "sharded", a spec that
/// ends at the prefix synthesizes a hybrid base.
PoolPrefix take_pool_prefix(std::vector<SpecPart>& parts) {
  PoolPrefix out;
  if (parts.empty() || !is_pool_token(parts.front().name)) return out;
  const SpecPart part = std::move(parts.front());
  parts.erase(parts.begin());
  out.pooled = true;
  out.nodes = 64;
  if (!part.options.empty()) {
    spec_error(
        "'pooled' takes no key=value options; fix the node count with "
        "'pooled:N'");
  }
  if (part.name != "pooled") {
    const std::string digits = part.name.substr(std::string("pooled:").size());
    const std::uint64_t n = parse_uint("pooled:N", digits);
    if (n < 1) spec_error("'" + part.name + "' needs at least one node");
    out.nodes = static_cast<std::size_t>(n);
  }
  if (parts.empty()) {
    SpecPart hybrid;
    hybrid.name = "hybrid";
    parts.push_back(std::move(hybrid));
  }
  return out;
}

/// Satellite check run before any layer is built: every decorator must
/// be a known name and appear at most once, and 'sharded' cannot ride
/// in decorator position.  Reported by token so "hybrid+traced+traced"
/// and "hybrid+tarced" both say exactly what's wrong.
void validate_decorators(const std::vector<SpecPart>& parts) {
  std::vector<std::string> seen;
  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::string& name = parts[i].name;
    if (is_shard_token(name)) {
      spec_error("'" + name + "' must be the first component of a spec");
    }
    if (is_pool_token(name)) {
      spec_error("'" + name +
                 "' must come before the base (after any 'sharded' prefix)");
    }
    if (name != "traced" && name != "batching" && name != "broadcast") {
      spec_error("unknown decorator '" + name + "'");
    }
    for (const std::string& s : seen) {
      if (s == name) spec_error("duplicate decorator '" + name + "'");
    }
    seen.push_back(name);
  }
}

struct BaseConfig {
  CounterKind kind;
  bool sharded = false;
  /// Workers of the completion pool; 0 = inline delivery (the default,
  /// never printed).  The executor itself lives in options — this is
  /// the number canonical_base() re-prints.
  std::size_t executor_pool_threads = 0;
  /// True when the spec named an executor explicitly (even
  /// "executor=inline") — an ambient default executor passed to
  /// make_counter(spec, executor) must not override it.
  bool executor_explicit = false;
  WaitListOptions options;
};

BaseConfig parse_base(const SpecPart& part, const ShardPrefix& shard,
                      const PoolPrefix& pool) {
  BaseConfig cfg;
  cfg.kind = counter_kind_from_string(part.name);
  cfg.sharded = shard.sharded;
  cfg.options.stripes = shard.stripes;
  cfg.options.preallocated_nodes = pool.pooled ? pool.nodes : 0;
  if (cfg.kind == CounterKind::kListNoPool) cfg.options.pool_nodes = false;
  for (const auto& [key, value] : part.options) {
    if (key == "pool") {
      cfg.options.pool_nodes = parse_uint(key, value) != 0;
    } else if (key == "pool_size") {
      cfg.options.max_pool_size = parse_uint(key, value);
    } else if (key == "max_waiters") {
      cfg.options.max_waiters = static_cast<std::size_t>(parse_uint(key, value));
    } else if (key == "max_levels") {
      cfg.options.max_levels = static_cast<std::size_t>(parse_uint(key, value));
    } else if (key == "overload") {
      if (value == "throw") {
        cfg.options.overload_policy = OverloadPolicy::kThrow;
      } else if (value == "spin") {
        cfg.options.overload_policy = OverloadPolicy::kSpinFallback;
      } else if (value == "block") {
        cfg.options.overload_policy = OverloadPolicy::kBlockIncrementers;
      } else {
        spec_error("option 'overload' value '" + value +
                   "' is not throw|spin|block");
      }
    } else if (key == "waitplane") {
      // waitplane=list | waitplane=heap[:S] — the WaitIndex seam.
      // Only the heap plane shards, so a ":S" suffix on 'list' is a
      // named error, not silently ignored.
      if (value == "list") {
        cfg.options.wait_plane = WaitPlaneKind::kList;
        cfg.options.wait_shards = 0;
      } else if (value == "heap") {
        cfg.options.wait_plane = WaitPlaneKind::kHeap;
        cfg.options.wait_shards = 0;
      } else if (value.rfind("heap:", 0) == 0) {
        const std::uint64_t n =
            parse_uint("waitplane=heap:S", value.substr(5));
        if (n < 1) {
          spec_error("'waitplane=" + value + "' needs at least one shard");
        }
        if (n > kMaxWaitShards) {
          spec_error("'waitplane=" + value + "' exceeds the shard cap (" +
                     std::to_string(kMaxWaitShards) +
                     ", like the striped plane's stripe clamp)");
        }
        cfg.options.wait_plane = WaitPlaneKind::kHeap;
        cfg.options.wait_shards = static_cast<std::size_t>(n);
      } else if (value.rfind("list:", 0) == 0) {
        spec_error("'waitplane=" + value +
                   "' — the list plane does not shard; use waitplane=heap:" +
                   value.substr(5));
      } else {
        spec_error("option 'waitplane' value '" + value +
                   "' is not list|heap[:S]");
      }
    } else if (key == "executor") {
      // executor=inline | executor=pool[:N] — the completion plane.
      cfg.executor_explicit = true;
      if (value == "inline") {
        cfg.executor_pool_threads = 0;
        cfg.options.completion_executor = nullptr;
      } else if (value == "pool") {
        cfg.executor_pool_threads = 1;
      } else if (value.rfind("pool:", 0) == 0) {
        const std::uint64_t n = parse_uint("executor=pool:N", value.substr(5));
        if (n < 1) {
          spec_error("'executor=" + value + "' needs at least one worker");
        }
        cfg.executor_pool_threads = static_cast<std::size_t>(n);
      } else {
        spec_error("option 'executor' value '" + value +
                   "' is not inline|pool[:N]");
      }
    } else {
      spec_error("unknown option '" + key + "' for base '" + part.name + "'");
    }
  }
  if (cfg.executor_pool_threads != 0) {
    cfg.options.completion_executor =
        std::make_shared<ThreadPoolExecutor>(cfg.executor_pool_threads);
  }
  // "list,pool=0" and "list-nopool" are the same configuration; fold to
  // the named kind so canonical specs are unique.
  if (cfg.kind == CounterKind::kList && !cfg.options.pool_nodes) {
    cfg.kind = CounterKind::kListNoPool;
  } else if (cfg.kind == CounterKind::kListNoPool && cfg.options.pool_nodes) {
    cfg.kind = CounterKind::kList;
  }
  // A preallocated pool on a pool-disabled list is a contradiction: the
  // ablation's point is that every acquire pays the allocator.
  if (pool.pooled && !cfg.options.pool_nodes) {
    spec_error("'pooled' requires node pooling; drop pool=0 / use 'list'");
  }
  return cfg;
}

std::string canonical_base(const BaseConfig& cfg) {
  std::string out;
  if (cfg.sharded) {
    out += "sharded";
    // Explicit stripe counts always print; the auto count never does,
    // so canonical specs are identical across machines.
    if (cfg.options.stripes != 0) {
      out += ':' + std::to_string(cfg.options.stripes);
    }
    out += '+';
  }
  if (cfg.options.preallocated_nodes != 0) {
    // The node count always prints (even the bare-"pooled" default 64):
    // a canonical spec should say how much memory it pins.
    out += "pooled:" + std::to_string(cfg.options.preallocated_nodes) + '+';
  }
  out += to_string(cfg.kind);
  const bool default_pool = cfg.kind != CounterKind::kListNoPool;
  if (cfg.options.pool_nodes != default_pool) {
    out += cfg.options.pool_nodes ? ",pool=1" : ",pool=0";
  }
  if (cfg.options.max_pool_size != WaitListOptions{}.max_pool_size) {
    out += ",pool_size=" + std::to_string(cfg.options.max_pool_size);
  }
  if (cfg.options.max_waiters != 0) {
    out += ",max_waiters=" + std::to_string(cfg.options.max_waiters);
  }
  if (cfg.options.max_levels != 0) {
    out += ",max_levels=" + std::to_string(cfg.options.max_levels);
  }
  switch (cfg.options.overload_policy) {
    case OverloadPolicy::kThrow:
      break;  // the default: never printed
    case OverloadPolicy::kSpinFallback:
      out += ",overload=spin";
      break;
    case OverloadPolicy::kBlockIncrementers:
      out += ",overload=block";
      break;
  }
  if (cfg.options.wait_plane == WaitPlaneKind::kHeap) {
    // Mirrors the stripe rule: an explicit shard count always prints,
    // the default (one shard) never does.
    out += ",waitplane=heap";
    if (cfg.options.wait_shards != 0) {
      out += ':' + std::to_string(cfg.options.wait_shards);
    }
  }
  if (cfg.executor_pool_threads != 0) {
    // The worker count always prints (even the bare-"pool" default 1):
    // a canonical spec should say how many threads it spawns.  Inline
    // is the default and never prints.
    out += ",executor=pool:" + std::to_string(cfg.executor_pool_threads);
  }
  return out;
}

#if !defined(_WIN32)

/// AnyCounter adapter for SharedCounter.  Not a CounterModel<C>
/// instantiation: SharedCounter is neither movable nor directly
/// constructible (factory functions only), so the member initializes
/// straight from the OpenOrCreate prvalue (guaranteed elision).
/// OpenOrCreate is the right mode for specs: "shared:/name" must work
/// in every process without coordinating which one creates.
class SharedCounterModel final : public AnyCounter {
 public:
  SharedCounterModel(std::string spec, const std::string& name,
                     SharedCounterOptions options)
      : spec_(std::move(spec)),
        impl_(SharedCounter::OpenOrCreate(name, options)) {}

  void Increment(counter_value_t amount) override { impl_.Increment(amount); }
  void Check(counter_value_t level) override { impl_.Check(level); }
  bool CheckFor(counter_value_t level,
                std::chrono::nanoseconds timeout) override {
    return impl_.CheckFor(level, timeout);
  }
  bool Check(counter_value_t level, std::stop_token stop) override {
    return impl_.Check(level, std::move(stop));
  }
  // SharedCounter has no native Check(pred) (the predicate is process-
  // local code the other side cannot run); the reduction happens here
  // and the threshold wait crosses the process boundary as usual.
  void CheckWhen(std::function<bool(counter_value_t)> pred) override {
    impl_.Check(reduce_predicate(pred, kPredicateCap));
  }
  bool CheckWhen(std::function<bool(counter_value_t)> pred,
                 std::stop_token stop) override {
    return impl_.Check(reduce_predicate(pred, kPredicateCap),
                       std::move(stop));
  }
  /// The shm value word read is atomic and monotone, so the debug read
  /// doubles as the sanctioned lower bound here.
  counter_value_t value_lower_bound() const override {
    return impl_.debug_value();
  }
  void OnReach(counter_value_t level, std::function<void()> fn) override {
    impl_.OnReach(level, std::move(fn));
  }
  void OnReach(counter_value_t level, std::function<void()> fn,
               std::function<void(std::exception_ptr)> on_error) override {
    impl_.OnReach(level, std::move(fn), std::move(on_error));
  }
  void Poison(std::exception_ptr cause) override {
    impl_.Poison(std::move(cause));
  }
  bool poisoned() const override { return impl_.poisoned(); }
  void Reset() override { impl_.Reset(); }
  CounterDebugSnapshot debug_snapshot() const override {
    return impl_.debug_snapshot();
  }
  counter_value_t debug_value() const override { return impl_.debug_value(); }
  CounterStatsSnapshot stats() const override { return impl_.stats(); }
  void stats_reset() override { impl_.stats_reset(); }
  std::size_t stripe_count() const override { return 1; }
  CounterKind kind() const override { return CounterKind::kShared; }
  const std::string& spec() const override { return spec_; }

 private:
  // Conservative predicate-reduction cap (SharedCounter advertises no
  // kMaxValue); matches detail::counter_max_value's fallback bound.
  static constexpr counter_value_t kPredicateCap =
      std::numeric_limits<counter_value_t>::max() >> 1;

  std::string spec_;
  SharedCounter impl_;
};

/// Parses everything after the "shared:" prefix:
///   /name[,detect=MS][,stale=MS][+futex]
/// The whole spec is the base — shared counters take no decorators
/// (each layer would be per-process state the other side can't see),
/// and the only accepted '+' suffix is the redundant 'futex' (the
/// shared wait plane IS the futex word; canonical form drops it).
std::unique_ptr<AnyCounter> make_shared_counter(std::string_view spec) {
  std::string_view rest = spec.substr(std::string_view("shared:").size());
  const std::vector<std::string> chunks = split(rest, '+');
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    if (chunks[i] != "futex") {
      spec_error("'" + chunks[i] +
                 "' cannot follow a shared counter (decorators are "
                 "per-process; only the redundant '+futex' is accepted)");
    }
  }
  const std::vector<std::string> tokens = split(chunks.front(), ',');
  const std::string& name = tokens.front();
  validate_shared_name(name);  // names the bad token on failure
  SharedCounterOptions options;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= tok.size()) {
      spec_error("option '" + tok + "' must be key=value");
    }
    const std::string key = trim(tok.substr(0, eq));
    const std::string value = trim(tok.substr(eq + 1));
    if (key == "detect") {
      const std::uint64_t ms = parse_uint(key, value);
      if (ms < 1) spec_error("'detect' needs at least 1 (milliseconds)");
      options.detect_period = std::chrono::milliseconds(ms);
    } else if (key == "stale") {
      options.heartbeat_stale_after =
          std::chrono::milliseconds(parse_uint(key, value));
    } else {
      spec_error("unknown option '" + key + "' for 'shared:'");
    }
  }
  std::string canonical = "shared:" + name;
  if (options.detect_period != SharedCounterOptions{}.detect_period) {
    canonical += ",detect=" + std::to_string(options.detect_period.count());
  }
  if (options.heartbeat_stale_after.count() != 0) {
    canonical +=
        ",stale=" + std::to_string(options.heartbeat_stale_after.count());
  }
  return std::make_unique<SharedCounterModel>(std::move(canonical), name,
                                              options);
}

#endif  // !_WIN32

std::unique_ptr<AnyCounter> make_base(const BaseConfig& cfg,
                                      std::string spec) {
  using detail::CounterModel;
  if (cfg.sharded) {
    switch (cfg.kind) {
      case CounterKind::kList:
      case CounterKind::kListNoPool:
        return std::make_unique<CounterModel<ShardedCounter>>(
            cfg.kind, std::move(spec), cfg.options);
      case CounterKind::kSingleCv:
        return std::make_unique<CounterModel<ShardedSingleCvCounter>>(
            cfg.kind, std::move(spec), cfg.options);
      case CounterKind::kFutex:
        return std::make_unique<CounterModel<ShardedFutexCounter>>(
            cfg.kind, std::move(spec), cfg.options);
      case CounterKind::kSpin:
        return std::make_unique<CounterModel<ShardedSpinCounter>>(
            cfg.kind, std::move(spec), cfg.options);
      case CounterKind::kHybrid:
        return std::make_unique<CounterModel<ShardedHybridCounter>>(
            cfg.kind, std::move(spec), cfg.options);
      case CounterKind::kShared:
        break;  // spec-only; handled before the base builder
    }
  }
  switch (cfg.kind) {
    case CounterKind::kList:
    case CounterKind::kListNoPool:
      return std::make_unique<CounterModel<Counter>>(cfg.kind, std::move(spec),
                                                     cfg.options);
    case CounterKind::kSingleCv:
      return std::make_unique<CounterModel<SingleCvCounter>>(
          cfg.kind, std::move(spec), cfg.options);
    case CounterKind::kFutex:
      return std::make_unique<CounterModel<FutexCounter>>(
          cfg.kind, std::move(spec), cfg.options);
    case CounterKind::kSpin:
      return std::make_unique<CounterModel<SpinCounter>>(
          cfg.kind, std::move(spec), cfg.options);
    case CounterKind::kHybrid:
      return std::make_unique<CounterModel<HybridCounter>>(
          cfg.kind, std::move(spec), cfg.options);
    case CounterKind::kShared:
      break;  // spec-only; handled before the base builder
  }
  MC_REQUIRE(false, "unknown counter kind");
  return nullptr;  // unreachable
}

/// Builds the base plus the first `layers` decorators of the parsed
/// spec.  `canonical` is the canonical spec up to and including that
/// layer (what the returned counter reports from spec()).
std::unique_ptr<AnyCounter> build_layers(const std::vector<SpecPart>& parts,
                                         const BaseConfig& base,
                                         std::size_t layers);

std::string canonical_layers(const std::vector<SpecPart>& parts,
                             const BaseConfig& base, std::size_t layers) {
  std::string spec = canonical_base(base);
  for (std::size_t i = 1; i <= layers; ++i) {
    const SpecPart& part = parts[i];
    spec += '+';
    if (part.name == "traced") {
      spec += "traced";
    } else if (part.name == "batching") {
      counter_value_t batch = 64;
      for (const auto& [key, value] : part.options) {
        if (key != "batch") {
          spec_error("unknown option '" + key + "' for decorator 'batching'");
        }
        batch = parse_uint(key, value);
      }
      spec += batch == 64 ? std::string("batching")
                          : "batching,batch=" + std::to_string(batch);
    } else if (part.name == "broadcast") {
      std::uint64_t shards = Broadcasting<Counter>::kDefaultShards;
      for (const auto& [key, value] : part.options) {
        if (key != "shards") {
          spec_error("unknown option '" + key + "' for decorator 'broadcast'");
        }
        shards = parse_uint(key, value);
      }
      spec += shards == Broadcasting<Counter>::kDefaultShards
                  ? std::string("broadcast")
                  : "broadcast,shards=" + std::to_string(shards);
    } else {
      spec_error("unknown decorator '" + part.name + "'");
    }
  }
  return spec;
}

std::unique_ptr<AnyCounter> build_layers(const std::vector<SpecPart>& parts,
                                         const BaseConfig& base,
                                         std::size_t layers) {
  std::string spec = canonical_layers(parts, base, layers);
  if (layers == 0) return make_base(base, std::move(spec));

  using detail::CounterModel;
  const SpecPart& part = parts[layers];
  if (part.name == "traced") {
    return std::make_unique<CounterModel<Traced<AnyHandle>>>(
        base.kind, std::move(spec), "counter", Tracer::global(), inner_args,
        AnyHandle(build_layers(parts, base, layers - 1)));
  }
  if (part.name == "batching") {
    counter_value_t batch = 64;
    for (const auto& [key, value] : part.options) {
      if (key != "batch") {
        spec_error("unknown option '" + key + "' for decorator 'batching'");
      }
      batch = parse_uint(key, value);
    }
    return std::make_unique<CounterModel<Batching<AnyHandle>>>(
        base.kind, std::move(spec), batch, inner_args,
        AnyHandle(build_layers(parts, base, layers - 1)));
  }
  if (part.name == "broadcast") {
    std::uint64_t shards = Broadcasting<Counter>::kDefaultShards;
    for (const auto& [key, value] : part.options) {
      if (key != "shards") {
        spec_error("unknown option '" + key + "' for decorator 'broadcast'");
      }
      shards = parse_uint(key, value);
    }
    if (shards < 1) spec_error("'broadcast' requires at least one shard");
    return std::make_unique<CounterModel<Broadcasting<AnyHandle>>>(
        base.kind, std::move(spec), static_cast<std::size_t>(shards),
        [&](std::size_t) {
          return std::make_unique<AnyHandle>(
              build_layers(parts, base, layers - 1));
        });
  }
  spec_error("unknown decorator '" + part.name + "'");
}

}  // namespace

std::unique_ptr<AnyCounter> make_counter(CounterKind kind) {
  if (kind == CounterKind::kShared) {
    throw std::invalid_argument(
        "counter spec: shared counters need a name; use "
        "make_counter(\"shared:/name\")");
  }
  BaseConfig cfg;
  cfg.kind = kind;
  if (kind == CounterKind::kListNoPool) cfg.options.pool_nodes = false;
  return make_base(cfg, std::string(to_string(kind)));
}

std::unique_ptr<AnyCounter> make_counter(std::string_view spec) {
  return make_counter(spec, nullptr);
}

std::unique_ptr<AnyCounter> make_counter(
    std::string_view spec,
    std::shared_ptr<CompletionExecutor> default_executor) {
  // "shared:" routes to its own parser before the '+'-split grammar:
  // the name itself contains '/' and the component is indivisible.
  // Cross-process counters deliver completions from waiter slices, not
  // an in-process executor, so the injection does not apply.
  if (spec.rfind("shared:", 0) == 0) {
#if defined(_WIN32)
    throw std::invalid_argument(
        "counter spec: 'shared:' counters require POSIX shared memory");
#else
    return make_shared_counter(spec);
#endif
  }
  std::vector<SpecPart> parts = parse_spec(spec);
  const ShardPrefix shard = take_shard_prefix(parts);
  const PoolPrefix pool = take_pool_prefix(parts);
  validate_decorators(parts);
  BaseConfig base = parse_base(parts.front(), shard, pool);
  if (!base.executor_explicit && default_executor != nullptr) {
    base.options.completion_executor = std::move(default_executor);
  }
  return build_layers(parts, base, parts.size() - 1);
}

}  // namespace monotonic
