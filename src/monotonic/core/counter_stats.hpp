// counter_stats.hpp — structural instrumentation for counter implementations.
//
// The paper's §7 complexity claim — storage and time proportional to the
// number of *distinct levels with waiters*, not the number of waiting
// threads — cannot be validated from wall time alone on a single-core
// machine.  Every counter implementation therefore maintains these
// structural counters (relaxed atomics, negligible overhead), and the
// E5/E6 benches report them directly.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "monotonic/support/config.hpp"
#include "monotonic/support/table.hpp"

namespace monotonic {

/// Plain-value snapshot of CounterStats, safe to copy and compare.
struct CounterStatsSnapshot {
  std::uint64_t increments = 0;       ///< Increment() calls
  std::uint64_t checks = 0;           ///< Check() calls
  std::uint64_t fast_checks = 0;      ///< Check() satisfied without sleeping
  std::uint64_t suspensions = 0;      ///< Check() calls that slept
  std::uint64_t wakeups = 0;          ///< threads woken by Increment()
  std::uint64_t notifies = 0;         ///< condvar notify_all calls issued
  std::uint64_t nodes_allocated = 0;  ///< wait nodes created (incl. reused)
  std::uint64_t nodes_pooled = 0;     ///< allocations served from the pool
  std::uint64_t live_nodes = 0;       ///< wait nodes currently linked/waited
  std::uint64_t max_live_nodes = 0;   ///< high-water mark of live_nodes
  std::uint64_t max_live_waiters = 0; ///< high-water mark of sleeping threads
  std::uint64_t spurious_wakeups = 0; ///< woken with predicate still false
  std::uint64_t poisons = 0;          ///< Poison() calls that took effect
  std::uint64_t aborted_wakeups = 0;  ///< waiters woken by Poison, not reached
  std::uint64_t cancelled_checks = 0; ///< Check(level, stop) cancelled returns
  std::uint64_t dropped_increments = 0; ///< increments on a poisoned counter
  std::uint64_t stall_reports = 0;    ///< watchdog reports emitted
  std::uint64_t fast_path_increments = 0; ///< increments that skipped the mutex
  std::uint64_t collapses = 0;        ///< striped-plane sums under the mutex
  std::uint64_t timed_out_checks = 0; ///< CheckFor/CheckUntil deadline returns
  std::uint64_t overload_rejections = 0; ///< waiters turned away by admission
  std::uint64_t degraded_waits = 0;   ///< waits demoted to the spin/poll path
  std::uint64_t pool_hits = 0;        ///< node allocations served by the pool
  std::uint64_t pool_misses = 0;      ///< node allocations that hit the heap
  std::uint64_t stripe_count = 1;     ///< value-plane stripes (1 = unsharded)
  std::uint64_t bulk_wakes = 0;       ///< releases that woke 2+ levels at once
  std::uint64_t index_depth = 0;      ///< heap plane: high-water shard depth
  std::uint64_t wait_shard_count = 1; ///< wait-plane shards (1 = unsharded)
  std::uint64_t predicate_checks = 0; ///< Check(pred) calls (threshold reduced)
  std::uint64_t async_completions = 0; ///< reached chains posted to an executor
  // Cross-process fields (shared_counter.hpp); an in-process counter
  // reports epoch 0, which is how printers tell the families apart.
  std::uint64_t participant_deaths = 0; ///< deaths detected, segment lifetime
  std::uint64_t epoch = 0;            ///< shared epoch (0 = in-process)
};

/// Thread-safe accumulator.  All mutators are relaxed: these are
/// diagnostics, not synchronization.
class CounterStats {
 public:
  void on_increment() noexcept { bump(increments_); }
  void on_check() noexcept { bump(checks_); }
  void on_fast_check() noexcept { bump(fast_checks_); }
  void on_spurious_wakeup() noexcept { bump(spurious_wakeups_); }
  void on_notify() noexcept { bump(notifies_); }
  void on_poison() noexcept { bump(poisons_); }
  void on_cancelled_check() noexcept { bump(cancelled_checks_); }
  void on_dropped_increment() noexcept { bump(dropped_increments_); }
  void on_stall_report() noexcept { bump(stall_reports_); }
  void on_fast_increment() noexcept { bump(fast_path_increments_); }
  void on_collapse() noexcept { bump(collapses_); }
  void on_timed_out_check() noexcept { bump(timed_out_checks_); }
  void on_overload_rejection() noexcept { bump(overload_rejections_); }
  void on_degraded_wait() noexcept { bump(degraded_waits_); }
  void on_predicate_check() noexcept { bump(predicate_checks_); }
  void on_async_completion() noexcept { bump(async_completions_); }

  /// Configuration, not a counter: recorded by striped value planes at
  /// construction so snapshots and printers can tell sharded counters
  /// apart.  Not gated on MONOTONIC_ENABLE_STATS (it costs nothing
  /// after construction) and not cleared by reset().
  void set_stripe_count(std::uint64_t n) noexcept {
    stripe_count_.store(n, std::memory_order_relaxed);
  }
  /// Configuration, not a counter: the wait plane's resolved shard
  /// count (1 for the list plane).  Same rules as set_stripe_count —
  /// not gated, survives reset().
  void set_wait_shard_count(std::uint64_t n) noexcept {
    wait_shard_count_.store(n, std::memory_order_relaxed);
  }
  /// A release pass (Increment's release_prefix or Poison's abort_all)
  /// that woke two or more levels in one sweep — the bulk-wake path
  /// the heap plane optimizes, counted on both planes for comparison.
  void on_bulk_wake() noexcept { bump(bulk_wakes_); }
  /// High-water mark of a wait-plane shard's heap depth (floor(log2 n)
  /// + 1) — the O(log L) the index's complexity claim is about.
  void on_index_depth(std::uint64_t depth) noexcept {
#if MONOTONIC_ENABLE_STATS
    raise_max(index_depth_, depth);
#else
    (void)depth;
#endif
  }
  void on_wakeups(std::uint64_t n) noexcept {
#if MONOTONIC_ENABLE_STATS
    wakeups_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  void on_aborted_wakeups(std::uint64_t n) noexcept {
#if MONOTONIC_ENABLE_STATS
    wakeups_.fetch_add(n, std::memory_order_relaxed);
    aborted_wakeups_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  void on_node_allocated(bool from_pool) noexcept {
#if MONOTONIC_ENABLE_STATS
    bump(nodes_allocated_);
    if (from_pool) {
      bump(nodes_pooled_);
      bump(pool_hits_);
    } else {
      bump(pool_misses_);
    }
    const auto live = live_nodes_.fetch_add(1, std::memory_order_relaxed) + 1;
    raise_max(max_live_nodes_, live);
#else
    (void)from_pool;
#endif
  }

  void on_node_freed() noexcept {
#if MONOTONIC_ENABLE_STATS
    live_nodes_.fetch_sub(1, std::memory_order_relaxed);
#endif
  }

  void on_suspend() noexcept {
#if MONOTONIC_ENABLE_STATS
    bump(suspensions_);
    const auto live =
        live_waiters_.fetch_add(1, std::memory_order_relaxed) + 1;
    raise_max(max_live_waiters_, live);
#endif
  }

  void on_resume() noexcept {
#if MONOTONIC_ENABLE_STATS
    live_waiters_.fetch_sub(1, std::memory_order_relaxed);
#endif
  }

  CounterStatsSnapshot snapshot() const noexcept;
  void reset() noexcept;

 private:
  static void bump(std::atomic<std::uint64_t>& a) noexcept {
#if MONOTONIC_ENABLE_STATS
    a.fetch_add(1, std::memory_order_relaxed);
#else
    (void)a;
#endif
  }
  static void raise_max(std::atomic<std::uint64_t>& max,
                        std::uint64_t candidate) noexcept {
    std::uint64_t cur = max.load(std::memory_order_relaxed);
    while (candidate > cur &&
           !max.compare_exchange_weak(cur, candidate,
                                      std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> increments_{0};
  std::atomic<std::uint64_t> checks_{0};
  std::atomic<std::uint64_t> fast_checks_{0};
  std::atomic<std::uint64_t> suspensions_{0};
  std::atomic<std::uint64_t> wakeups_{0};
  std::atomic<std::uint64_t> notifies_{0};
  std::atomic<std::uint64_t> nodes_allocated_{0};
  std::atomic<std::uint64_t> nodes_pooled_{0};
  std::atomic<std::uint64_t> live_nodes_{0};
  std::atomic<std::uint64_t> max_live_nodes_{0};
  std::atomic<std::uint64_t> live_waiters_{0};
  std::atomic<std::uint64_t> max_live_waiters_{0};
  std::atomic<std::uint64_t> spurious_wakeups_{0};
  std::atomic<std::uint64_t> poisons_{0};
  std::atomic<std::uint64_t> aborted_wakeups_{0};
  std::atomic<std::uint64_t> cancelled_checks_{0};
  std::atomic<std::uint64_t> dropped_increments_{0};
  std::atomic<std::uint64_t> stall_reports_{0};
  std::atomic<std::uint64_t> fast_path_increments_{0};
  std::atomic<std::uint64_t> collapses_{0};
  std::atomic<std::uint64_t> timed_out_checks_{0};
  std::atomic<std::uint64_t> overload_rejections_{0};
  std::atomic<std::uint64_t> degraded_waits_{0};
  std::atomic<std::uint64_t> pool_hits_{0};
  std::atomic<std::uint64_t> pool_misses_{0};
  std::atomic<std::uint64_t> stripe_count_{1};
  std::atomic<std::uint64_t> bulk_wakes_{0};
  std::atomic<std::uint64_t> index_depth_{0};
  std::atomic<std::uint64_t> wait_shard_count_{1};
  std::atomic<std::uint64_t> predicate_checks_{0};
  std::atomic<std::uint64_t> async_completions_{0};
};

/// Renders labelled snapshots as an aligned table.  Built on TextTable,
/// whose columns auto-size to their widest cell — counts past 7 digits
/// (stress runs) widen the column instead of shearing it, which the
/// old fixed-width printf formats got wrong.  The stripe columns
/// (stripes / collapses / fast incs) appear only when at least one row
/// is sharded, and the wait-plane columns (wshards / depth / bulk
/// wakes) only when at least one row runs the heap plane; unsharded
/// tables keep their familiar shape.  Within an extended table, rows
/// the extra columns do not apply to print "-" instead of a misleading
/// zero-padded value.
TextTable counter_stats_table(
    const std::vector<std::pair<std::string, CounterStatsSnapshot>>& rows);

}  // namespace monotonic
