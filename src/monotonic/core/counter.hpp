// counter.hpp — the monotonic counter (the paper's primary contribution).
//
//   "A counter object has three basic attributes: (i) a nonnegative
//    integer value, (ii) an Increment operation, and (iii) a Check
//    operation.  The initial value of the counter is zero.  Increment
//    atomically increases the value of the counter by a specified
//    amount.  Check suspends the calling thread until the value of the
//    counter is greater than or equal to a specified level."  (§1)
//
// This class is the §7 reference implementation: a mutex, the value,
// and a dynamically-sized *ordered list of wait nodes* — one node per
// distinct level on which at least one thread is suspended, each node
// holding {level, waiter count, condition variable, link}.  Increment
// unlinks and broadcasts the prefix of nodes whose level is now
// reached; the last waiter to leave a node frees it.  Storage and the
// cost of both operations are therefore proportional to the number of
// distinct levels with live waiters, not to the number of waiting
// threads (the property benched in E5/E6).
//
// Deliberate API omissions, per §2:
//   * no Decrement — the value is monotone, so an enabled Check can
//     never become disabled; this is what makes counter synchronization
//     race-free and deterministic (§6);
//   * no Probe / value getter — a branch on the instantaneous value
//     would reintroduce timing-dependent behaviour.  Tests and benches
//     use debug_snapshot(), which is named so misuse is conspicuous.
//
// Extensions beyond the paper (each documented at its declaration):
// Reset() (mentioned in §2 as a practical convenience), timed
// CheckFor/CheckUntil, n-ary IncrementAndCheck fusion, and a wait-node
// pool (ablatable via Options).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "monotonic/core/counter_stats.hpp"
#include "monotonic/support/config.hpp"

namespace monotonic {

/// Monotonic counter per Thornley & Chandy §7 (lock + ordered wait list).
class Counter {
 public:
  struct Options {
    /// Reuse freed wait nodes through an internal free list instead of
    /// returning them to the allocator.  On by default; the E5 bench
    /// ablates it.
    bool pool_nodes = true;
    /// Maximum nodes retained in the pool (0 = unbounded).
    std::size_t max_pool_size = 64;
  };

  Counter() : Counter(Options{}) {}
  explicit Counter(const Options& options);

  /// Destroys the counter.  Precondition: no thread is suspended in
  /// Check() (checked; destruction with waiters aborts rather than
  /// corrupting them).
  ~Counter();

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Atomically increases the value by `amount`, waking every thread
  /// suspended on a level <= the new value.  Increment(0) is a no-op.
  /// Overflow past 2^64-1 is a checked usage error.
  void Increment(counter_value_t amount = 1);

  /// Suspends the calling thread until value >= level.  Returns
  /// immediately if the level has already been reached.
  void Check(counter_value_t level);

  /// Timed Check (extension): returns true if the level was reached,
  /// false on timeout.  A timed-out waiter unlinks itself; if it was
  /// the last waiter at its level the node is freed, preserving the
  /// O(live levels) storage bound.
  template <typename Rep, typename Period>
  bool CheckFor(counter_value_t level,
                std::chrono::duration<Rep, Period> timeout) {
    return check_until(level, std::chrono::steady_clock::now() + timeout);
  }

  template <typename Clock, typename Duration>
  bool CheckUntil(counter_value_t level,
                  std::chrono::time_point<Clock, Duration> deadline) {
    return check_until(
        level, std::chrono::time_point_cast<std::chrono::steady_clock::duration>(
                   deadline));
  }

  /// Asynchronous Check (extension): registers `fn` to run exactly once
  /// when the value reaches `level`.  If the level has already been
  /// reached, fn runs immediately in the calling thread; otherwise it
  /// runs in the thread whose Increment reaches the level, *after* that
  /// Increment has released the waiting threads and dropped the
  /// internal lock (so fn may freely call back into this or any other
  /// counter — C++ Core Guidelines CP.22).  Callbacks for one level run
  /// in registration order; across levels, in level order.
  ///
  /// This turns a counter into a dataflow trigger without parking a
  /// thread per dependency — the async analogue of Check.
  void OnReach(counter_value_t level, std::function<void()> fn);

  /// Resets the value to zero for reuse between algorithm phases (§2).
  /// Must not be called concurrently with any other operation on this
  /// counter; calling it while threads are suspended or callbacks are
  /// pending is a checked error.
  void Reset();

  /// One ordered (level, waiters) pair per live wait node.
  struct DebugWaitLevel {
    counter_value_t level;
    std::size_t waiters;
  };

  /// Structural snapshot for tests and benches (Figure 2 reproduction).
  /// Application code must not branch on this — see the no-probe rule.
  struct DebugSnapshot {
    counter_value_t value;
    std::vector<DebugWaitLevel> wait_levels;     // ascending by level
    std::vector<counter_value_t> callback_levels;  // ascending
  };
  DebugSnapshot debug_snapshot() const;

  /// Structural statistics since construction (or stats_reset()).
  CounterStatsSnapshot stats() const noexcept { return stats_.snapshot(); }
  void stats_reset() noexcept { stats_.reset(); }

 private:
  // One node per distinct level with waiters (§7 / Figure 2):
  // {level, count, condition variable ("signal"), link}.
  struct WaitNode {
    counter_value_t level = 0;
    std::size_t waiters = 0;
    bool released = false;  // set by Increment when level is reached
    std::condition_variable cv;
    WaitNode* next = nullptr;
  };

  // One node per level with registered callbacks; same ordering
  // discipline as WaitNode, but released nodes are carried out of the
  // lock and executed there (CP.22).
  struct CallbackNode {
    counter_value_t level = 0;
    std::vector<std::function<void()>> callbacks;
    CallbackNode* next = nullptr;
  };

  bool check_until(counter_value_t level,
                   std::chrono::steady_clock::time_point deadline);

  // Requires m_.  Detaches the prefix of callback nodes with
  // level <= value_ and returns it (caller runs them after unlocking).
  CallbackNode* detach_reached_callbacks();
  static void run_callback_chain(CallbackNode* chain);

  // All four helpers require m_ to be held.
  WaitNode* acquire_node(counter_value_t level);
  void release_node(WaitNode* node);
  WaitNode** find_insert_position(counter_value_t level);
  void drain_pool();

  const Options options_;
  mutable std::mutex m_;
  counter_value_t value_ = 0;
  WaitNode* waiting_ = nullptr;    // ascending by level; levels > value_
  WaitNode* free_list_ = nullptr;  // node pool (options_.pool_nodes)
  std::size_t pool_size_ = 0;
  CallbackNode* callbacks_ = nullptr;  // ascending by level; levels > value_
  CounterStats stats_;
};

}  // namespace monotonic
