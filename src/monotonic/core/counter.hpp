// counter.hpp — the §7 reference implementation of the monotonic
// counter: a mutex, the value, and the ordered per-level wait list,
// with one condition variable per wait node.  Increment unlinks and
// broadcasts the prefix of nodes whose level is now reached; the last
// waiter to leave a node frees it.  Storage and the cost of both
// operations are therefore proportional to the number of distinct
// levels with live waiters, not to the number of waiting threads (the
// property benched in E5/E6).
//
// Since the policy-based refactor the machinery lives in
// basic_counter.hpp (engine) + wait_list.hpp (ordered list) +
// wait_policy.hpp (BlockingWait); `Counter` is the BlockingWait
// instantiation.  Full API documentation is on BasicCounter.
#pragma once

#include "monotonic/core/basic_counter.hpp"
#include "monotonic/core/striped_cells.hpp"
#include "monotonic/core/wait_policy.hpp"

namespace monotonic {

/// Monotonic counter per Thornley & Chandy §7 (lock + ordered wait list).
using Counter = BasicCounter<BlockingWait>;

/// Counter with the striped value plane: producers publish into
/// cache-line-padded per-stripe cells and skip the mutex while nobody
/// waits below the watermark; waiting and waking stay BlockingWait's
/// §7 mutex + per-node condition variables.  WaitListOptions::stripes
/// picks the cell count (0 = hardware default).
using ShardedCounter = BasicCounter<BlockingWait, StripedPlane>;

}  // namespace monotonic
