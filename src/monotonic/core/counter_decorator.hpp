// counter_decorator.hpp — generic decorators over any CounterLike.
//
// The core counters stay hook-free; cross-cutting behaviour composes
// from the outside, and since the policy-based refactor the wrappers
// are generic — any decorator stacks on any implementation (or on
// another decorator, or on a runtime AnyHandle from the spec factory):
//
//   Traced<C>        — emits Tracer events per operation
//   Batching<C>      — §5.3 blocked-writer amortization of Increment
//   Broadcasting<C>  — S-shard replication: Increment fans out to every
//                      shard, Check reads a thread-local shard, spreading
//                      waiter contention across S locks
//
// CounterDecoratorBase owns the wrapped counter and forwards the full
// BasicCounter surface (Check/CheckFor/CheckUntil/OnReach/Reset/
// debug_snapshot/stats), so a decorator only overrides the operations
// it actually intercepts.  Forwarding members are instantiated lazily
// (class-template member rule), so wrapping a minimal CounterLike that
// lacks, say, OnReach still compiles as long as nothing calls it.
#pragma once

#include <algorithm>
#include <chrono>
#include <concepts>
#include <cstddef>
#include <exception>
#include <functional>
#include <limits>
#include <memory>
#include <stop_token>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "monotonic/core/counter.hpp"
#include "monotonic/core/counter_concept.hpp"
#include "monotonic/core/counter_stats.hpp"
#include "monotonic/core/wait_list.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/support/config.hpp"
#include "monotonic/support/trace.hpp"

namespace monotonic {

namespace detail {

/// kMaxValue of the wrapped type when it advertises one; otherwise the
/// conservative lock-free bound (safe for any implementation).
template <typename C>
constexpr counter_value_t counter_max_value() {
  if constexpr (requires { C::kMaxValue; }) {
    return C::kMaxValue;
  } else {
    return std::numeric_limits<counter_value_t>::max() >> 1;
  }
}

}  // namespace detail

/// Tag for decorator constructors that forward trailing arguments to
/// the wrapped counter's constructor.
using inner_args_t = std::in_place_t;
inline constexpr inner_args_t inner_args{};

/// Owns the wrapped counter and forwards the whole counter surface.
/// Decorators derive and override what they intercept.
template <CounterLike C>
class CounterDecoratorBase {
 public:
  using Inner = C;
  static constexpr counter_value_t kMaxValue = detail::counter_max_value<C>();

  CounterDecoratorBase() = default;
  template <typename... Args>
  explicit CounterDecoratorBase(inner_args_t, Args&&... args)
      : impl_(std::forward<Args>(args)...) {}

  CounterDecoratorBase(const CounterDecoratorBase&) = delete;
  CounterDecoratorBase& operator=(const CounterDecoratorBase&) = delete;

  void Increment(counter_value_t amount = 1) { impl_.Increment(amount); }
  void Check(counter_value_t level) { impl_.Check(level); }
  bool Check(counter_value_t level, std::stop_token stop) {
    return impl_.Check(level, std::move(stop));
  }

  // Predicate waits (monotone predicates of the value; see
  // basic_counter.hpp).  Constrained exactly like the engine's
  // overloads so a literal still picks the level path.
  template <typename Pred>
    requires(!std::convertible_to<Pred, counter_value_t> &&
             std::predicate<Pred&, counter_value_t>)
  void Check(Pred pred) {
    impl_.Check(std::move(pred));
  }
  template <typename Pred>
    requires(!std::convertible_to<Pred, counter_value_t> &&
             std::predicate<Pred&, counter_value_t>)
  bool Check(Pred pred, std::stop_token stop) {
    return impl_.Check(std::move(pred), std::move(stop));
  }

  template <typename Rep, typename Period>
  bool CheckFor(counter_value_t level,
                std::chrono::duration<Rep, Period> timeout) {
    return impl_.CheckFor(level, timeout);
  }

  template <typename Clock, typename Duration>
  bool CheckUntil(counter_value_t level,
                  std::chrono::time_point<Clock, Duration> deadline) {
    return impl_.CheckUntil(level, deadline);
  }

  void OnReach(counter_value_t level, std::function<void()> fn,
               std::function<void(std::exception_ptr)> on_error = {}) {
    impl_.OnReach(level, std::move(fn), std::move(on_error));
  }

  void Poison(std::exception_ptr cause) { impl_.Poison(std::move(cause)); }
  void Poison(std::string_view reason) { impl_.Poison(reason); }
  bool poisoned() const { return impl_.poisoned(); }

  void Reset() { impl_.Reset(); }

  CounterDebugSnapshot debug_snapshot() const { return impl_.debug_snapshot(); }
  counter_value_t debug_value() const { return impl_.debug_value(); }
  /// Monotone lower bound of the value — sanctioned for multi.hpp
  /// trigger computation (unlike debug_value, which is debug-only).
  counter_value_t value_lower_bound() const {
    return impl_.value_lower_bound();
  }
  CounterStatsSnapshot stats() const { return impl_.stats(); }
  void stats_reset() { impl_.stats_reset(); }

  /// Value-plane stripes of the wrapped counter (1 when unsharded).
  std::size_t stripe_count() const noexcept {
    return detail::stripe_count_of(impl_);
  }

  C& inner() noexcept { return impl_; }
  const C& inner() const noexcept { return impl_; }

 protected:
  ~CounterDecoratorBase() = default;  // not used polymorphically

  C impl_;
};

/// Tracer-instrumented counter.  `name` must have static storage
/// duration (string literal).  Records increment / fast-check / resume
/// events; the fast/slow classification reuses the wrapped counter's
/// own stats (suspension delta), so it stays truthful for every policy.
template <CounterLike C = Counter>
class Traced : public CounterDecoratorBase<C> {
 public:
  explicit Traced(const char* name = "counter",
                  Tracer& tracer = Tracer::global())
      : name_(name), tracer_(tracer) {}
  template <typename... Args>
  Traced(const char* name, Tracer& tracer, inner_args_t, Args&&... args)
      : CounterDecoratorBase<C>(inner_args, std::forward<Args>(args)...),
        name_(name),
        tracer_(tracer) {}

  void Increment(counter_value_t amount = 1) {
    if (!tracer_.enabled()) {  // keep the disabled path one atomic load
      this->impl_.Increment(amount);
      return;
    }
    tracer_.record(TraceEventKind::kIncrement, name_, amount);
    // Stripe-collapse visibility: when the wrapped counter's collapse
    // count moved across this Increment, the add crossed the armed
    // watermark and paid a slow pass — worth a lens event (same
    // stats-delta approximation as the fast/slow Check split below).
    const auto before = this->impl_.stats().collapses;
    this->impl_.Increment(amount);
    if (this->impl_.stats().collapses != before) {
      tracer_.record(TraceEventKind::kCollapse, name_, amount);
    }
  }

  using CounterDecoratorBase<C>::Check;  // keep the cancellable overload

  void Check(counter_value_t level) {
    // Distinguish fast and slow paths by the stats delta — the wrapped
    // counter already classifies them.
    const auto before = this->impl_.stats().suspensions;
    this->impl_.Check(level);
    if (this->impl_.stats().suspensions != before) {
      // We were parked (approximately: another thread's suspension in
      // the same window can misattribute; good enough for a lens).
      tracer_.record(TraceEventKind::kResume, name_, level);
    } else {
      tracer_.record(TraceEventKind::kCheckFast, name_, level);
    }
  }

  /// Predicate waits get the same fast/slow classification as level
  /// waits; the recorded arg is the reduced threshold's reach, which
  /// the engine does not expose, so 0 stands in.
  template <typename Pred>
    requires(!std::convertible_to<Pred, counter_value_t> &&
             std::predicate<Pred&, counter_value_t>)
  void Check(Pred pred) {
    const auto before = this->impl_.stats().suspensions;
    this->impl_.Check(std::move(pred));
    if (this->impl_.stats().suspensions != before) {
      tracer_.record(TraceEventKind::kResume, name_, 0);
    } else {
      tracer_.record(TraceEventKind::kCheckFast, name_, 0);
    }
  }

  /// Completion-plane lens: each registered callback is wrapped to emit
  /// a kCompletion event when it actually runs — on the incrementing
  /// thread inline, or on an executor thread when the counter was built
  /// with one, which is exactly the handoff the lens exists to show.
  /// The tracer must outlive any pending callback (Tracer::global()
  /// trivially does).
  void OnReach(counter_value_t level, std::function<void()> fn,
               std::function<void(std::exception_ptr)> on_error = {}) {
    std::function<void()> wrapped =
        [&t = tracer_, name = name_, level, fn = std::move(fn)] {
          fn();
          if (t.enabled()) t.record(TraceEventKind::kCompletion, name, level);
        };
    std::function<void(std::exception_ptr)> wrapped_error;
    if (on_error) {
      wrapped_error = [&t = tracer_, name = name_, level,
                       on_error = std::move(on_error)](std::exception_ptr ep) {
        on_error(std::move(ep));
        if (t.enabled()) t.record(TraceEventKind::kCompletion, name, level);
      };
    }
    this->impl_.OnReach(level, std::move(wrapped), std::move(wrapped_error));
  }

  void Poison(std::exception_ptr cause) {
    tracer_.record(TraceEventKind::kPoison, name_, 0);
    this->impl_.Poison(std::move(cause));
  }

  void Poison(std::string_view reason) {
    tracer_.record(TraceEventKind::kPoison, name_, 0);
    this->impl_.Poison(reason);
  }

  /// Back-compat accessor (pre-refactor TracedCounter name).
  C& impl() noexcept { return this->impl_; }

 private:
  const char* name_;
  Tracer& tracer_;
};

/// §5.3 blocked-writer amortization as a thread-safe decorator:
/// increments accumulate in an atomic pending cell and are pushed to
/// the wrapped counter in batches of `batch` units.  Check-side
/// operations flush first, so a thread always observes its own
/// increments (and batch=1 is an exact pass-through, which is what the
/// conformance suite instantiates).
///
/// Unlike BatchingIncrementer (batching_counter.hpp) — a per-thread
/// front-end sharing one counter — Batching<C> *is* a counter, so it
/// can appear anywhere a CounterLike is expected, including inside
/// other decorators and the spec factory ("hybrid+batching,batch=64").
template <CounterLike C = Counter>
class Batching : public CounterDecoratorBase<C> {
 public:
  explicit Batching(counter_value_t batch = 1) : batch_(batch) {
    MC_REQUIRE(batch >= 1, "batch size must be positive");
  }
  template <typename... Args>
  Batching(counter_value_t batch, inner_args_t, Args&&... args)
      : CounterDecoratorBase<C>(inner_args, std::forward<Args>(args)...),
        batch_(batch) {
    MC_REQUIRE(batch >= 1, "batch size must be positive");
  }

  /// Flushes any buffered amount on destruction, so no increment is
  /// ever lost (mirrors BroadcastChannel::Writer).
  ~Batching() { flush(); }

  void Increment(counter_value_t amount = 1) {
    if (amount == 0) {
      this->impl_.Increment(0);  // still a (counted) no-op downstream
      return;
    }
    const counter_value_t total =
        pending_.fetch_add(amount, std::memory_order_relaxed) + amount;
    if (total >= batch_) flush();
  }

  void Check(counter_value_t level) {
    flush();
    this->impl_.Check(level);
  }

  bool Check(counter_value_t level, std::stop_token stop) {
    flush();
    return this->impl_.Check(level, std::move(stop));
  }

  // Predicate evaluation must see this thread's own increments, so the
  // buffer flushes before the engine reduces the predicate to a level.
  template <typename Pred>
    requires(!std::convertible_to<Pred, counter_value_t> &&
             std::predicate<Pred&, counter_value_t>)
  void Check(Pred pred) {
    flush();
    this->impl_.Check(std::move(pred));
  }
  template <typename Pred>
    requires(!std::convertible_to<Pred, counter_value_t> &&
             std::predicate<Pred&, counter_value_t>)
  bool Check(Pred pred, std::stop_token stop) {
    flush();
    return this->impl_.Check(std::move(pred), std::move(stop));
  }

  template <typename Rep, typename Period>
  bool CheckFor(counter_value_t level,
                std::chrono::duration<Rep, Period> timeout) {
    flush();
    return this->impl_.CheckFor(level, timeout);
  }

  template <typename Clock, typename Duration>
  bool CheckUntil(counter_value_t level,
                  std::chrono::time_point<Clock, Duration> deadline) {
    flush();
    return this->impl_.CheckUntil(level, deadline);
  }

  void OnReach(counter_value_t level, std::function<void()> fn,
               std::function<void(std::exception_ptr)> on_error = {}) {
    flush();
    this->impl_.OnReach(level, std::move(fn), std::move(on_error));
  }

  /// Flush-then-poison: buffered increments represent work that DID
  /// happen before the failure, so they are published first — the
  /// frozen value reflects completed work, and only the future is cut
  /// off.  (Flushing after the poison would silently drop them.)
  void Poison(std::exception_ptr cause) {
    flush();
    this->impl_.Poison(std::move(cause));
  }

  void Poison(std::string_view reason) {
    flush();
    this->impl_.Poison(reason);
  }

  /// Applies buffered increments, then resets the wrapped counter.
  void Reset() {
    flush();
    this->impl_.Reset();
  }

  /// Pushes the buffered amount immediately.
  void flush() {
    const counter_value_t drained =
        pending_.exchange(0, std::memory_order_relaxed);
    if (drained > 0) this->impl_.Increment(drained);
  }

  /// Buffered amount not yet visible downstream (lags debug_value()).
  counter_value_t pending() const noexcept {
    return pending_.load(std::memory_order_relaxed);
  }

 private:
  const counter_value_t batch_;
  std::atomic<counter_value_t> pending_{0};
};

/// S-shard replicated counter: Increment fans out to every shard (in
/// shard order), Check and the timed variants go to a shard picked by
/// the calling thread's id.  Every shard carries the full value, so any
/// shard answers any Check correctly; what sharding buys is S
/// independent locks/wait-lists, spreading waiter contention (the E6
/// many-waiters regime) at the cost of S-fold Increment work — the
/// classic read-mostly broadcast trade.
template <CounterLike C = Counter>
class Broadcasting {
 public:
  using Inner = C;
  static constexpr std::size_t kDefaultShards = 4;
  static constexpr counter_value_t kMaxValue = detail::counter_max_value<C>();

  explicit Broadcasting(std::size_t shards = kDefaultShards) {
    MC_REQUIRE(shards >= 1, "Broadcasting requires at least one shard");
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<C>());
    }
  }
  /// `make(i)` builds shard i — how the spec factory threads a full
  /// inner spec ("broadcast,shards=2+hybrid") through to each shard.
  template <typename Factory>
    requires requires(Factory f, std::size_t i) {
      { f(i) } -> std::convertible_to<std::unique_ptr<C>>;
    }
  Broadcasting(std::size_t shards, Factory&& make) {
    MC_REQUIRE(shards >= 1, "Broadcasting requires at least one shard");
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) shards_.push_back(make(i));
  }

  Broadcasting(const Broadcasting&) = delete;
  Broadcasting& operator=(const Broadcasting&) = delete;

  void Increment(counter_value_t amount = 1) {
    for (auto& shard : shards_) shard->Increment(amount);
  }

  void Check(counter_value_t level) { local_shard().Check(level); }

  bool Check(counter_value_t level, std::stop_token stop) {
    return local_shard().Check(level, std::move(stop));
  }

  // Predicate waits route to the thread's shard like level waits —
  // every shard carries the full value, so any shard reduces the
  // predicate to the same threshold.
  template <typename Pred>
    requires(!std::convertible_to<Pred, counter_value_t> &&
             std::predicate<Pred&, counter_value_t>)
  void Check(Pred pred) {
    local_shard().Check(std::move(pred));
  }
  template <typename Pred>
    requires(!std::convertible_to<Pred, counter_value_t> &&
             std::predicate<Pred&, counter_value_t>)
  bool Check(Pred pred, std::stop_token stop) {
    return local_shard().Check(std::move(pred), std::move(stop));
  }

  template <typename Rep, typename Period>
  bool CheckFor(counter_value_t level,
                std::chrono::duration<Rep, Period> timeout) {
    return local_shard().CheckFor(level, timeout);
  }

  template <typename Clock, typename Duration>
  bool CheckUntil(counter_value_t level,
                  std::chrono::time_point<Clock, Duration> deadline) {
    return local_shard().CheckUntil(level, deadline);
  }

  /// Callbacks register on shard 0 (every shard sees every increment,
  /// so shard 0's trigger times equal any other's).
  void OnReach(counter_value_t level, std::function<void()> fn,
               std::function<void(std::exception_ptr)> on_error = {}) {
    shards_.front()->OnReach(level, std::move(fn), std::move(on_error));
  }

  /// Poison fans out to every shard, in shard order, so waiters parked
  /// on any shard are woken.  A Check racing the fan-out on a not-yet-
  /// poisoned shard simply parks and is woken when the wave reaches it.
  void Poison(std::exception_ptr cause) {
    for (auto& shard : shards_) shard->Poison(cause);
  }

  void Poison(std::string_view reason) {
    for (auto& shard : shards_) shard->Poison(reason);
  }

  /// Shard 0 is poisoned first, so it answers for the ensemble.
  bool poisoned() const { return shards_.front()->poisoned(); }

  void Reset() {
    for (auto& shard : shards_) shard->Reset();
  }

  /// Merged snapshot: the (replicated) value from shard 0, wait levels
  /// summed across shards, callback levels from shard 0.
  CounterDebugSnapshot debug_snapshot() const {
    CounterDebugSnapshot merged = shards_.front()->debug_snapshot();
    for (std::size_t i = 1; i < shards_.size(); ++i) {
      merge_wait_levels(merged.wait_levels,
                        shards_[i]->debug_snapshot().wait_levels);
    }
    return merged;
  }

  counter_value_t debug_value() const {
    return shards_.front()->debug_value();
  }

  /// Any shard's bound is a bound for the ensemble (replicated value);
  /// shard 0 is the one callbacks register on.
  counter_value_t value_lower_bound() const {
    return shards_.front()->value_lower_bound();
  }

  /// Summed across shards, with increments normalized back to logical
  /// operations (each logical Increment touched every shard).  The
  /// max_live_* high-water marks are summed too — an upper bound, since
  /// the shards need not have peaked simultaneously.
  CounterStatsSnapshot stats() const {
    CounterStatsSnapshot sum{};
    for (auto& shard : shards_) {
      const CounterStatsSnapshot s = shard->stats();
      sum.increments += s.increments;
      sum.checks += s.checks;
      sum.fast_checks += s.fast_checks;
      sum.suspensions += s.suspensions;
      sum.wakeups += s.wakeups;
      sum.notifies += s.notifies;
      sum.nodes_allocated += s.nodes_allocated;
      sum.nodes_pooled += s.nodes_pooled;
      sum.live_nodes += s.live_nodes;
      sum.max_live_nodes += s.max_live_nodes;
      sum.max_live_waiters += s.max_live_waiters;
      sum.spurious_wakeups += s.spurious_wakeups;
      sum.poisons += s.poisons;
      sum.aborted_wakeups += s.aborted_wakeups;
      sum.cancelled_checks += s.cancelled_checks;
      sum.dropped_increments += s.dropped_increments;
      sum.stall_reports += s.stall_reports;
      sum.collapses += s.collapses;
      sum.fast_path_increments += s.fast_path_increments;
      // Stripe count is configuration, not a tally: report the widest
      // shard (they normally agree).
      sum.stripe_count = std::max(sum.stripe_count, s.stripe_count);
    }
    sum.increments /= shards_.size();
    // Replicated per shard, like increments: one logical Poison (or
    // dropped Increment) touched every shard, and each logical
    // Increment took one fast-or-slow path per shard.
    sum.poisons /= shards_.size();
    sum.dropped_increments /= shards_.size();
    sum.fast_path_increments /= shards_.size();
    return sum;
  }
  void stats_reset() {
    for (auto& shard : shards_) shard->stats_reset();
  }

  std::size_t shard_count() const noexcept { return shards_.size(); }
  C& shard(std::size_t i) { return *shards_[i]; }

  /// Widest value plane across shards (1 when the shards are unsharded).
  std::size_t stripe_count() const noexcept {
    std::size_t widest = 1;
    for (const auto& shard : shards_) {
      widest = std::max(widest, detail::stripe_count_of(*shard));
    }
    return widest;
  }

 private:
  C& local_shard() {
    const std::size_t i =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) %
        shards_.size();
    return *shards_[i];
  }

  static void merge_wait_levels(std::vector<DebugWaitLevel>& into,
                                const std::vector<DebugWaitLevel>& from) {
    std::vector<DebugWaitLevel> merged;
    merged.reserve(into.size() + from.size());
    std::size_t a = 0, b = 0;
    while (a < into.size() || b < from.size()) {
      if (b >= from.size() ||
          (a < into.size() && into[a].level < from[b].level)) {
        merged.push_back(into[a++]);
      } else if (a >= into.size() || from[b].level < into[a].level) {
        merged.push_back(from[b++]);
      } else {
        merged.push_back(
            DebugWaitLevel{into[a].level, into[a].waiters + from[b].waiters});
        ++a;
        ++b;
      }
    }
    into = std::move(merged);
  }

  std::vector<std::unique_ptr<C>> shards_;
};

}  // namespace monotonic
