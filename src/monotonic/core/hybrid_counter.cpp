#include "monotonic/core/hybrid_counter.hpp"

namespace monotonic {

HybridCounter::~HybridCounter() {
  std::scoped_lock lock(m_);
  MC_CHECK(waiting_ == nullptr,
           "HybridCounter destroyed with suspended waiters");
}

void HybridCounter::Increment(counter_value_t amount) {
  stats_.on_increment();
  if (amount == 0) return;
  // Overflow is checked BEFORE the fetch_add: a wrapped word would
  // corrupt the flag bit and cannot be rolled back.  The check is
  // optimistic (concurrent increments could still overflow between the
  // load and the add) — like any checked usage error, racing into the
  // boundary is a caller bug; the check catches the deterministic case.
  MC_REQUIRE(amount <= kMaxValue &&
                 (word_.load(std::memory_order_relaxed) >> 1) <=
                     kMaxValue - amount,
             "counter value overflow");
  // Amount occupies the value field (bits 63..1).
  const counter_value_t prev =
      word_.fetch_add(amount << 1, std::memory_order_release);
  if ((prev & kWaitersBit) == 0) return;  // fast path: nobody parked

  // Slow path: waiters may be eligible.  The lock orders us with the
  // waiter's set-flag/re-check protocol.
  std::scoped_lock lock(m_);
  release_reached_locked();
}

void HybridCounter::release_reached_locked() {
  const counter_value_t value = word_.load(std::memory_order_acquire) >> 1;
  while (waiting_ != nullptr && waiting_->level <= value) {
    WaitNode* node = waiting_;
    waiting_ = node->next;
    node->released = true;
    stats_.on_wakeups(node->waiters);
    stats_.on_notify();
    node->cv.notify_all();
  }
  if (waiting_ == nullptr) {
    // List drained: allow future increments back onto the fast path.
    word_.fetch_and(~kWaitersBit, std::memory_order_relaxed);
  }
}

void HybridCounter::Check(counter_value_t level) {
  stats_.on_check();
  MC_REQUIRE(level <= kMaxValue, "level exceeds HybridCounter range");
  if ((word_.load(std::memory_order_acquire) >> 1) >= level) {
    stats_.on_fast_check();  // lock-free success
    return;
  }

  std::unique_lock lock(m_);
  // Publish intent to sleep, then re-check: any Increment that races
  // past the flag-set either sees the flag (and will queue behind m_)
  // or happened before our re-read (and we see its value).
  word_.fetch_or(kWaitersBit, std::memory_order_relaxed);
  if ((word_.load(std::memory_order_acquire) >> 1) >= level) {
    stats_.on_fast_check();
    // We set the flag but never parked; if the list is empty, clear it
    // so increments return to the fast path.
    if (waiting_ == nullptr) {
      word_.fetch_and(~kWaitersBit, std::memory_order_relaxed);
    }
    return;
  }

  // Park on a per-level node, §7 style.
  WaitNode** pos = &waiting_;
  while (*pos != nullptr && (*pos)->level < level) pos = &(*pos)->next;
  WaitNode* node;
  WaitNode local;  // stack node: the hybrid counter allocates nothing
  if (*pos != nullptr && (*pos)->level == level) {
    node = *pos;
  } else {
    node = &local;
    node->level = level;
    node->next = *pos;
    *pos = node;
    stats_.on_node_allocated(false);
  }
  ++node->waiters;
  stats_.on_suspend();
  while (!node->released) {
    node->cv.wait(lock);
    if (!node->released) stats_.on_spurious_wakeup();
  }
  stats_.on_resume();
  --node->waiters;
  if (node == &local) {
    // A stack node dies with its frame; it must have no co-waiters
    // left.  Co-waiters joined OUR node, so we leave only after them.
    while (node->waiters != 0) {
      node->cv.wait(lock);  // released stays true; just wait them out
    }
    stats_.on_node_freed();
  } else if (node->waiters == 0) {
    // Last leaver of someone else's stack node: wake its owner (who
    // may be parked in the waiters!=0 loop above).
    node->cv.notify_all();
  }
}

void HybridCounter::Reset() {
  std::scoped_lock lock(m_);
  MC_REQUIRE(waiting_ == nullptr,
             "Reset called while threads are suspended");
  word_.store(0, std::memory_order_release);
}

}  // namespace monotonic
