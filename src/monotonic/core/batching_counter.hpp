// batching_counter.hpp — per-thread increment batching.
//
// §5.3's blocked writer generalized into a counter adapter: a
// BatchingIncrementer accumulates increments locally and pushes them to
// the shared counter once `batch_size` units have accrued (or on
// flush()/destruction).  Readers observe the counter rising in batch
// steps — coarser dataflow granularity for cheaper synchronization,
// the same dial as §5.3's blockSize but reusable with ANY counter
// consumer, not just BroadcastChannel.
//
// Semantics note: batching *delays* visibility (value lags the logical
// total by < batch_size until flushed) but preserves monotonicity and
// therefore all of §6's determinism machinery — a Check still can't
// observe a value that later decreases.
//
// Related: Batching<C> (counter_decorator.hpp) is the decorator form —
// a thread-safe counter that owns its wrapped implementation and
// batches internally, composable via the spec factory.  This class is
// the per-thread front-end sharing one counter reference.
#pragma once

#include "monotonic/core/counter.hpp"
#include "monotonic/core/counter_concept.hpp"
#include "monotonic/core/counter_decorator.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/support/config.hpp"

namespace monotonic {

/// Thread-local batching front-end for a shared counter.  NOT
/// thread-safe itself: one incrementer per producing thread.
template <CounterLike C = Counter>
class BatchingIncrementer {
 public:
  /// Batches `batch_size` units before each push to `counter`.
  BatchingIncrementer(C& counter, counter_value_t batch_size)
      : counter_(counter), batch_(batch_size) {
    MC_REQUIRE(batch_size >= 1, "batch size must be positive");
  }
  BatchingIncrementer(const BatchingIncrementer&) = delete;
  BatchingIncrementer& operator=(const BatchingIncrementer&) = delete;

  /// Flushes any buffered amount on destruction, so no increment is
  /// ever lost on the orderly path (mirrors BroadcastChannel::Writer).
  ///
  /// The flush is guarded: destructors are implicitly noexcept, and an
  /// incrementer routinely dies during stack unwinding — often from
  /// the very exception that just poisoned the underlying counter.  A
  /// BasicCounter absorbs post-poison increments as counted drops, but
  /// a CounterLike is any counter (AnyCounter, decorators, user
  /// types), and its Increment may throw (overflow MC_REQUIRE, a
  /// poisoned adapter that rethrows, ...).  Letting that escape here
  /// would std::terminate the process mid-unwind, so the destructor
  /// swallows the failure and records the loss in dropped() instead.
  ~BatchingIncrementer() {
    try {
      flush();
    } catch (...) {
      dropped_ += pending_;
      pending_ = 0;
    }
  }

  void Increment(counter_value_t amount = 1) {
    pending_ += amount;
    if (pending_ >= batch_) flush();
  }

  /// Pushes the buffered amount immediately.  Unlike the destructor
  /// this propagates any exception from the underlying counter — a
  /// live caller can handle it (and the amount stays pending, so a
  /// later flush may still deliver it).
  void flush() {
    if (pending_ > 0) {
      counter_.Increment(pending_);
      pending_ = 0;
    }
  }

  counter_value_t pending() const noexcept { return pending_; }

  /// Units abandoned because a destructor-time flush threw.  (Drops
  /// absorbed by a poisoned BasicCounter are not counted here — the
  /// counter's own stats().dropped_increments records those.)
  counter_value_t dropped() const noexcept { return dropped_; }

 private:
  C& counter_;
  const counter_value_t batch_;
  counter_value_t pending_ = 0;
  counter_value_t dropped_ = 0;
};

}  // namespace monotonic
