// awaitable.hpp — C++20 coroutine awaitables over counter levels.
//
// `Check(level)` parks an OS thread; `OnReach(level, fn)` runs a
// callback with no thread at all.  This header closes the gap between
// them: `co_await reach(counter, level)` suspends a *coroutine frame*
// — tens of bytes — instead of an OS thread — megabytes of stack —
// so a million logical waiters cost what a million heap nodes cost,
// not what a million threads cost (bench E15 measures exactly this).
//
//   DetachedTask consumer() {
//     co_await reach(published, 10);      // no thread parked
//     use_items();
//   }
//
// The awaitable is a thin adapter over OnReach, so it inherits the
// engine's guarantees verbatim:
//
//   * already-reached levels resume without suspending (OnReach runs
//     its callback synchronously; the fired/armed handshake below turns
//     that into `await_suspend` returning false);
//   * poison resumes the coroutine with CounterPoisonedError raised
//     from `co_await` (delivered through OnReach's on_error channel);
//   * with a completion executor configured, resumption runs on the
//     executor's thread, not the incrementer's.
//
// `reach(counter, level, stop_token)` adds cooperative cancellation:
// a stop request resumes the coroutine with `co_await` returning
// false (mirroring Check(level, stop)'s bool).  `when_all(r1, r2, ...)`
// suspends until every condition holds — levels on *different*
// counters compose because monotonicity makes each sub-wait latching.
//
// This header is standalone: it needs only the standard library plus
// the error and config headers, never the engine — any type with the
// OnReach(level, fn, on_err) contract works, including AnyHandle and
// every decorator.
#pragma once

#include <atomic>
#include <coroutine>
#include <cstddef>
#include <cstdio>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stop_token>
#include <tuple>
#include <utility>

#include "monotonic/core/counter_error.hpp"
#include "monotonic/support/config.hpp"

namespace monotonic {

namespace detail {

/// Shared between the awaitable (frame side) and the OnReach / stop
/// callbacks (firer side).  Lifetime: shared_ptr, because a losing
/// firer — say a reach callback racing a stop request — can outlive
/// the coroutine by an arbitrary stretch (it runs whenever its level
/// is finally reached) and must land on live memory.
struct AwaitState {
  enum class Result { kReached, kCancelled, kError };

  /// First firer wins: claims the right to write the result payload
  /// and complete the handshake.  Late firers are no-ops.
  std::atomic<bool> claimed{false};
  /// Handshake against the suspending thread: 0 = registering,
  /// 1 = suspended (firer resumes), 2 = fired (don't suspend).
  std::atomic<int> fired{0};
  std::coroutine_handle<> handle;
  Result result = Result::kReached;
  std::exception_ptr error;
  /// Keeps the stop callback alive as long as a firer might race it.
  std::optional<std::stop_callback<std::function<void()>>> stop_watch;

  /// Runs on whichever thread fires first (incrementer, executor
  /// worker, or the stop-requesting thread).  Writes the payload
  /// before the handshake so await_resume reads it happens-after.
  void fire(Result r, std::exception_ptr ep = nullptr) {
    if (claimed.exchange(true, std::memory_order_acq_rel)) return;
    result = r;
    error = std::move(ep);
    if (fired.exchange(2, std::memory_order_acq_rel) == 1) {
      handle.resume();
    }
  }

  /// await_suspend tail: complete the armed/fired handshake after all
  /// registration is done.  Returns whether the coroutine suspends —
  /// false when a firer already ran (synchronous OnReach on an
  /// already-reached level, or an instant stop), which resumes inline.
  bool arm() {
    return fired.exchange(1, std::memory_order_acq_rel) != 2;
  }

  /// await_resume body: rethrow errors, map reached/cancelled to bool.
  bool consume() {
    if (result == Result::kError) std::rethrow_exception(error);
    return result == Result::kReached;
  }

  /// Arms a stop_token against this state.  Captures `this` rather
  /// than a shared_ptr (which would cycle state → stop_watch → state
  /// and leak): stop_watch is the LAST declared member, so ~AwaitState
  /// destroys it first, and ~stop_callback blocks until an in-flight
  /// invocation returns — the callback can never touch freed members.
  void watch(std::stop_token stop) {
    stop_watch.emplace(std::move(stop), std::function<void()>([this] {
                         fire(Result::kCancelled);
                       }));
  }
};

/// Single-condition state: reached fires success directly.
struct SingleAwaitState : AwaitState {
  void on_reached() { fire(Result::kReached); }
  void on_error(std::exception_ptr ep) {
    fire(Result::kError, ensure_poisoned_error(std::move(ep)));
  }
};

/// when_all state: the last condition to be satisfied fires; any
/// error fires immediately (fail-fast — the conjunction can no longer
/// hold, exactly like check_all unwinding on the first poisoned
/// counter).
struct AllAwaitState : AwaitState {
  explicit AllAwaitState(std::size_t n) : remaining(n) {}
  std::atomic<std::size_t> remaining;
  void on_reached() {
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      fire(Result::kReached);
    }
  }
  void on_error(std::exception_ptr ep) {
    fire(Result::kError, ensure_poisoned_error(std::move(ep)));
  }
};

}  // namespace detail

/// Awaitable for one (counter, level) condition.  Returned by
/// reach(); `co_await` it exactly once.
template <typename C>
class [[nodiscard]] ReachAwaitable {
 public:
  ReachAwaitable(C& counter, counter_value_t level)
      : counter_(&counter), level_(level) {}
  ReachAwaitable(C& counter, counter_value_t level, std::stop_token stop)
      : counter_(&counter), level_(level), stop_(std::move(stop)) {}

  bool await_ready() const noexcept { return false; }

  bool await_suspend(std::coroutine_handle<> h) {
    state_ = std::make_shared<detail::SingleAwaitState>();
    state_->handle = h;
    register_on(*counter_, state_);
    if (stop_) state_->watch(*stop_);
    return state_->arm();
  }

  /// True when the level was reached; false when the stop token fired
  /// first; throws (CounterPoisonedError for poison) on error.
  bool await_resume() { return state_->consume(); }

  C& counter() const noexcept { return *counter_; }
  counter_value_t level() const noexcept { return level_; }

  /// Registers this condition's OnReach firing `st` — when_all reuses
  /// it against its own shared state.  The registration is permanent
  /// (the engine has no deregistration); a fire after the state was
  /// claimed is a no-op, the same bounded residual as a
  /// woken-but-cancelled Check(level, stop) waiter.
  template <typename State>
  void register_on(C& target, const std::shared_ptr<State>& st) const {
    target.OnReach(
        level_, [st] { st->on_reached(); },
        [st](std::exception_ptr ep) { st->on_error(std::move(ep)); });
  }

 private:
  C* counter_;
  counter_value_t level_;
  std::optional<std::stop_token> stop_;
  std::shared_ptr<detail::SingleAwaitState> state_;
};

/// `co_await reach(counter, n)` — suspend this coroutine until
/// `counter`'s value is at least `n`.  Works with any OnReach-capable
/// counter: every policy, both wait planes, decorators, AnyHandle.
template <typename C>
ReachAwaitable<C> reach(C& counter, counter_value_t level) {
  return ReachAwaitable<C>(counter, level);
}

/// Cancellable variant: a stop request resumes the coroutine with
/// `co_await` evaluating to false.
template <typename C>
ReachAwaitable<C> reach(C& counter, counter_value_t level,
                        std::stop_token stop) {
  return ReachAwaitable<C>(counter, level, std::move(stop));
}

/// Awaitable conjunction: resumes when every condition holds.  Because
/// counters are monotone, each sub-condition latches once reached —
/// no revocation, so "all of them, eventually" is exactly "each of
/// them, in any order".  Any poisoned counter fails the whole wait
/// with its CounterPoisonedError.
template <typename... C>
class [[nodiscard]] WhenAllAwaitable {
 public:
  explicit WhenAllAwaitable(ReachAwaitable<C>... conditions)
      : conditions_(std::move(conditions)...) {}

  bool await_ready() const noexcept { return false; }

  bool await_suspend(std::coroutine_handle<> h) {
    // +1 registration guard: the state cannot fire success while
    // conditions are still being registered, even if every counter is
    // already past its level and each OnReach runs synchronously.
    state_ = std::make_shared<detail::AllAwaitState>(sizeof...(C) + 1);
    state_->handle = h;
    std::apply(
        [this](auto&... cond) {
          (cond.register_on(cond.counter(), state_), ...);
        },
        conditions_);
    state_->on_reached();  // release the registration guard
    return state_->arm();
  }

  /// True (all reached) or throws the first error observed.
  bool await_resume() { return state_->consume(); }

 private:
  std::tuple<ReachAwaitable<C>...> conditions_;
  std::shared_ptr<detail::AllAwaitState> state_;
};

/// `co_await when_all(reach(a, 3), reach(b, 5))`.
template <typename... C>
WhenAllAwaitable<C...> when_all(ReachAwaitable<C>... conditions) {
  return WhenAllAwaitable<C...>(std::move(conditions)...);
}

/// What a DetachedTask does with an exception that escapes its body.
/// Receives the escaped exception; runs on whichever thread resumed
/// the coroutine (an incrementer, an executor worker, a server event
/// loop) — keep it cheap and never let it throw.
using DetachedTaskErrorHandler = std::function<void(std::exception_ptr)>;

namespace detail {
struct DetachedErrorSlot {
  std::mutex m;
  DetachedTaskErrorHandler handler;  ///< empty = default stderr line
};
inline DetachedErrorSlot& detached_error_slot() {
  static DetachedErrorSlot slot;
  return slot;
}
}  // namespace detail

/// Installs the process-wide handler for exceptions escaping
/// DetachedTask coroutines, returning the previous handler (empty =
/// the default, which logs one stderr line and drops the exception).
/// Pass an empty function to restore the default.
///
/// A detached coroutine has no joiner, so an escaped exception has no
/// natural propagation edge — the pre-handler behavior was
/// std::terminate, which is the wrong failure mode for a server whose
/// completions are all detached: one poisoned counter reaching an
/// un-caught `co_await` must not take down every other connection.
/// The handler is the surviving propagation edge.  A server should
/// treat it like a producer exception: log it, and Poison the
/// counters (or FailureDomain) the dead task was serving so its
/// waiters unblock as CounterPoisonedError instead of hanging —
/// dropping the exception silently strands them.  Note that an
/// un-caught poison error from `co_await reach()` itself lands here
/// too (already-poisoned work needs no re-poisoning, just the log).
inline DetachedTaskErrorHandler set_detached_task_error_handler(
    DetachedTaskErrorHandler handler) {
  auto& slot = detail::detached_error_slot();
  std::lock_guard<std::mutex> lk(slot.m);
  std::swap(slot.handler, handler);
  return handler;
}

/// Minimal fire-and-forget coroutine type for launching awaiting
/// work: starts eagerly and detaches.  An exception that escapes the
/// body is routed to the process-wide handler
/// (set_detached_task_error_handler) — by default one stderr line,
/// never std::terminate — so prefer handling errors inside the body
/// (e.g. catch CounterPoisonedError around the co_await) where the
/// task still has context.  Tests, benches and the shard server use
/// it; applications with richer lifetime needs should bring their own
/// task type.
struct DetachedTask {
  struct promise_type {
    DetachedTask get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept {
      DetachedTaskErrorHandler handler;
      {
        auto& slot = detail::detached_error_slot();
        std::lock_guard<std::mutex> lk(slot.m);
        handler = slot.handler;
      }
      std::exception_ptr ep = std::current_exception();
      if (handler) {
        try {
          handler(std::move(ep));
        } catch (...) {
          std::fprintf(stderr,
                       "monotonic: DetachedTask error handler itself threw; "
                       "exception dropped\n");
        }
        return;
      }
      try {
        std::rethrow_exception(ep);
      } catch (const std::exception& e) {
        std::fprintf(stderr,
                     "monotonic: exception escaped a DetachedTask coroutine "
                     "(dropped): %s\n",
                     e.what());
      } catch (...) {
        std::fprintf(stderr,
                     "monotonic: non-std::exception escaped a DetachedTask "
                     "coroutine (dropped)\n");
      }
    }
  };
};

}  // namespace monotonic
