// basic_counter.hpp — the monotonic counter (the paper's primary
// contribution), as ONE engine with swappable waiting policies.
//
//   "A counter object has three basic attributes: (i) a nonnegative
//    integer value, (ii) an Increment operation, and (iii) a Check
//    operation.  The initial value of the counter is zero.  Increment
//    atomically increases the value of the counter by a specified
//    amount.  Check suspends the calling thread until the value of the
//    counter is greater than or equal to a specified level."  (§1)
//
// BasicCounter<WaitPolicy> owns everything the policies share — the
// value, the §7 ordered wait list (wait_list.hpp), the OnReach
// callback list, node pooling, stats, Reset, timed checks and
// debug_snapshot() — and delegates exactly two decisions to the policy
// (wait_policy.hpp): whether the fast paths are lock-free, and how a
// parked thread sleeps / a released node wakes.  The five historical
// implementations are aliases:
//
//   Counter         = BasicCounter<BlockingWait>   (§7 reference)
//   SingleCvCounter = BasicCounter<SingleCvWait>   (broadcast baseline)
//   FutexCounter    = BasicCounter<FutexWait>
//   SpinCounter     = BasicCounter<SpinWait>
//   HybridCounter   = BasicCounter<HybridWait>
//
// so every implementation uniformly supports CheckFor/CheckUntil,
// OnReach, Reset, pooled wait nodes and Figure-2 introspection, with
// identical checked-usage semantics.
//
// Deliberate API omissions, per §2:
//   * no Decrement — the value is monotone, so an enabled Check can
//     never become disabled; this is what makes counter synchronization
//     race-free and deterministic (§6);
//   * no Probe / value getter — a branch on the instantaneous value
//     would reintroduce timing-dependent behaviour.  Tests and benches
//     use debug_snapshot()/debug_value(), named so misuse is
//     conspicuous.
//
// Lock-free fast paths (FutexWait, SpinWait, HybridWait) use the
// attention-bit protocol: the value lives in one atomic word with bit 0
// flagging "a slow-path pass is required" (parked waiters and/or
// pending callbacks).  The classic lost-wakeup hazard (value rises
// between the waiter's check and its enqueue) is closed by re-reading
// the value *after* setting the bit while holding the mutex: either the
// racing Increment sees the bit (and will take the mutex, which we hold
// first) or the waiter sees the new value (and doesn't sleep).  The
// cost: the logical value is capped at 2^63-1 (one bit spent on the
// flag), and increments during a waiter's residency each pay the lock.
#pragma once

#include <chrono>
#include <functional>
#include <limits>
#include <mutex>
#include <type_traits>
#include <utility>

#include "monotonic/core/counter_stats.hpp"
#include "monotonic/core/wait_list.hpp"
#include "monotonic/core/wait_policy.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/support/config.hpp"

namespace monotonic {

namespace detail {

/// Value representation: a plain word guarded by the counter mutex
/// (locking policies) or an atomic word with the attention bit
/// (lock-free policies).
template <bool LockFree>
struct CounterValueRep {
  counter_value_t value = 0;  // guarded by the counter mutex
};

template <>
struct CounterValueRep<true> {
  std::atomic<counter_value_t> word{0};  // (value << 1) | attention
};

/// Converts an arbitrary-clock deadline to the steady clock the wait
/// engine runs on.  time_point_cast only converts the duration type,
/// not the epoch, so casting e.g. a system_clock deadline directly
/// would mis-time by the (enormous) epoch difference — instead convert
/// via a now()-delta against both clocks.
template <typename Clock, typename Duration>
std::chrono::steady_clock::time_point to_steady_deadline(
    std::chrono::time_point<Clock, Duration> deadline) {
  if constexpr (std::is_same_v<Clock, std::chrono::steady_clock>) {
    return std::chrono::time_point_cast<std::chrono::steady_clock::duration>(
        deadline);
  } else {
    const auto delta = deadline - Clock::now();
    return std::chrono::steady_clock::now() +
           std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               delta);
  }
}

}  // namespace detail

/// Monotonic counter per Thornley & Chandy, generic over the waiting
/// policy (see wait_policy.hpp for the policy contract).
template <typename Policy>
class BasicCounter {
 public:
  using WaitPolicy = Policy;
  using Options = WaitListOptions;
  using DebugWaitLevel = monotonic::DebugWaitLevel;
  using DebugSnapshot = CounterDebugSnapshot;

  /// True when uncontended Increment / satisfied Check are lock-free.
  static constexpr bool kLockFreeFastPath = Policy::kLockFreeFastPath;

  /// Maximum representable value.  Lock-free policies spend bit 0 of
  /// the word on the attention flag, halving the range.
  static constexpr counter_value_t kMaxValue =
      kLockFreeFastPath ? (std::numeric_limits<counter_value_t>::max() >> 1)
                        : std::numeric_limits<counter_value_t>::max();

  BasicCounter() : BasicCounter(Options{}) {}
  explicit BasicCounter(const Options& options)
      : options_(options), list_(options_, stats_) {}

  /// Destroys the counter.  Precondition: no thread is suspended in
  /// Check() (checked; destruction with waiters aborts rather than
  /// corrupting them).  Unreached OnReach callbacks are dropped, not
  /// run: running "reached level L" callbacks for a level that was
  /// never reached would be a lie.
  ~BasicCounter() {
    std::scoped_lock lock(m_);
    MC_CHECK(list_.empty(), "counter destroyed with suspended waiters");
  }

  BasicCounter(const BasicCounter&) = delete;
  BasicCounter& operator=(const BasicCounter&) = delete;

  /// Atomically increases the value by `amount`, waking every thread
  /// suspended on a level <= the new value.  Increment(0) is a no-op.
  /// Overflow past kMaxValue is a checked usage error.
  void Increment(counter_value_t amount = 1) {
    if constexpr (kLockFreeFastPath) {
      stats_.on_increment();
      if (amount == 0) return;
      // Overflow is checked BEFORE the fetch_add: a wrapped word would
      // corrupt the flag bit and cannot be rolled back.  The check is
      // optimistic (concurrent increments could still overflow between
      // the load and the add) — like any checked usage error, racing
      // into the boundary is a caller bug; the check catches the
      // deterministic case.
      MC_REQUIRE(amount <= kMaxValue &&
                     (rep_.word.load(std::memory_order_relaxed) >> 1) <=
                         kMaxValue - amount,
                 "counter value overflow");
      const counter_value_t prev =
          rep_.word.fetch_add(amount << 1, std::memory_order_release);
      if ((prev & kAttentionBit) == 0) return;  // fast path: nobody parked
      CallbackList::Node* reached = nullptr;
      {
        std::unique_lock lock(m_);
        reached = release_reached_locked();
      }
      // Callbacks run outside the lock (CP.22): they may re-enter this
      // counter or any other.
      CallbackList::run_chain(reached);
    } else {
      CallbackList::Node* reached = nullptr;
      {
        std::unique_lock lock(m_);
        stats_.on_increment();
        if (amount == 0) return;
        MC_REQUIRE(rep_.value <= kMaxValue - amount, "counter value overflow");
        rep_.value += amount;
        const bool had_waiters = !list_.empty();
        list_.release_prefix(
            rep_.value, [&](Node& node) { policy_.on_release(node, stats_); });
        policy_.on_increment_locked(had_waiters, stats_);
        reached = callbacks_.detach_reached(rep_.value);
      }
      policy_.on_increment_unlocked(false);
      CallbackList::run_chain(reached);
    }
  }

  /// Suspends the calling thread until value >= level.  Returns
  /// immediately if the level has already been reached.
  void Check(counter_value_t level) {
    stats_.on_check();
    if constexpr (kLockFreeFastPath) {
      MC_REQUIRE(level <= kMaxValue, "level exceeds counter range");
      if ((rep_.word.load(std::memory_order_acquire) >> 1) >= level) {
        stats_.on_fast_check();  // lock-free success
        return;
      }
      std::unique_lock lock(m_);
      if (!announce_waiter_locked(level)) {
        stats_.on_fast_check();
        return;
      }
      park(lock, level);
    } else {
      std::unique_lock lock(m_);
      // Fast path (§7): "Check with a level less than or equal to the
      // current counter value returns immediately."
      if (rep_.value >= level) {
        stats_.on_fast_check();
        return;
      }
      park(lock, level);
    }
  }

  /// Timed Check (extension): returns true if the level was reached,
  /// false on timeout.  A timed-out waiter unlinks itself; if it was
  /// the last waiter at its level the node is freed, preserving the
  /// O(live levels) storage bound.
  template <typename Rep, typename Period>
  bool CheckFor(counter_value_t level,
                std::chrono::duration<Rep, Period> timeout) {
    return check_until_steady(level,
                              std::chrono::steady_clock::now() + timeout);
  }

  /// Timed Check against an absolute deadline on any clock.  Non-steady
  /// clocks are converted via a now()-delta (see to_steady_deadline).
  template <typename Clock, typename Duration>
  bool CheckUntil(counter_value_t level,
                  std::chrono::time_point<Clock, Duration> deadline) {
    return check_until_steady(level, detail::to_steady_deadline(deadline));
  }

  /// Asynchronous Check (extension): registers `fn` to run exactly once
  /// when the value reaches `level`.  If the level has already been
  /// reached, fn runs immediately in the calling thread; otherwise it
  /// runs in the thread whose Increment reaches the level, *after* that
  /// Increment has released the waiting threads and dropped the
  /// internal lock (so fn may freely call back into this or any other
  /// counter — C++ Core Guidelines CP.22).  Callbacks for one level run
  /// in registration order; across levels, in level order.
  ///
  /// This turns a counter into a dataflow trigger without parking a
  /// thread per dependency — the async analogue of Check.
  void OnReach(counter_value_t level, std::function<void()> fn) {
    if constexpr (kLockFreeFastPath) {
      MC_REQUIRE(level <= kMaxValue, "level exceeds counter range");
      {
        std::unique_lock lock(m_);
        if (announce_waiter_locked(level)) {
          callbacks_.insert(level, std::move(fn));
          return;
        }
      }
    } else {
      {
        std::unique_lock lock(m_);
        if (rep_.value < level) {
          callbacks_.insert(level, std::move(fn));
          return;
        }
      }
    }
    // Level already reached: run here, outside the lock.
    fn();
  }

  /// Resets the value to zero for reuse between algorithm phases (§2).
  /// Must not be called concurrently with any other operation on this
  /// counter; calling it while threads are suspended or callbacks are
  /// pending is a checked error.
  void Reset() {
    std::scoped_lock lock(m_);
    MC_REQUIRE(list_.empty(),
               "Reset called while threads are suspended (§2: Reset must not "
               "run concurrently with other operations)");
    MC_REQUIRE(callbacks_.empty(),
               "Reset called with pending OnReach callbacks");
    if constexpr (kLockFreeFastPath) {
      rep_.word.store(0, std::memory_order_release);
    } else {
      rep_.value = 0;
    }
  }

  /// Structural snapshot for tests and benches (Figure 2 reproduction).
  /// Application code must not branch on this — see the no-probe rule.
  DebugSnapshot debug_snapshot() const {
    std::scoped_lock lock(m_);
    DebugSnapshot snap;
    snap.value = value_locked();
    list_.snapshot_into(snap.wait_levels);
    callbacks_.snapshot_into(snap.callback_levels);
    return snap;
  }

  /// The instantaneous value, for tests/benches only (no-probe rule).
  counter_value_t debug_value() const {
    if constexpr (kLockFreeFastPath) {
      return rep_.word.load(std::memory_order_acquire) >> 1;
    } else {
      std::scoped_lock lock(m_);
      return rep_.value;
    }
  }

  /// Structural statistics since construction (or stats_reset()).
  CounterStatsSnapshot stats() const noexcept { return stats_.snapshot(); }
  void stats_reset() noexcept { stats_.reset(); }

 private:
  using Signal = typename Policy::Signal;
  using List = WaitList<Signal>;
  using Node = typename List::Node;

  static constexpr counter_value_t kAttentionBit = 1;

  // Requires m_ (meaningless for locking policies, whose value is only
  // ever read under m_ anyway).
  counter_value_t value_locked() const {
    if constexpr (kLockFreeFastPath) {
      return rep_.word.load(std::memory_order_acquire) >> 1;
    } else {
      return rep_.value;
    }
  }

  // Lock-free policies only; requires m_.  Publishes intent to sleep
  // (or to register a callback), then re-checks: any Increment that
  // races past the flag-set either sees the flag (and will queue behind
  // m_) or happened before our re-read (and we see its value).  Returns
  // true when the caller should proceed to park/register; false when
  // the level turned out to be reached already.
  bool announce_waiter_locked(counter_value_t level) {
    rep_.word.fetch_or(kAttentionBit, std::memory_order_relaxed);
    if ((rep_.word.load(std::memory_order_acquire) >> 1) >= level) {
      maybe_clear_attention_locked();
      return false;
    }
    return true;
  }

  // Lock-free policies only; requires m_.  Allows future increments
  // back onto the fast path once nothing needs a slow-path pass.
  void maybe_clear_attention_locked() {
    if (list_.empty() && callbacks_.empty()) {
      rep_.word.fetch_and(~kAttentionBit, std::memory_order_relaxed);
    }
  }

  // Lock-free policies only; requires m_.  Releases every reached wait
  // node, detaches reached callbacks (run them after unlocking).
  CallbackList::Node* release_reached_locked() {
    const counter_value_t value =
        rep_.word.load(std::memory_order_acquire) >> 1;
    list_.release_prefix(
        value, [&](Node& node) { policy_.on_release(node, stats_); });
    CallbackList::Node* reached = callbacks_.detach_reached(value);
    maybe_clear_attention_locked();
    return reached;
  }

  void park(std::unique_lock<std::mutex>& lock, counter_value_t level) {
    Node* node = list_.acquire(level);
    stats_.on_suspend();
    policy_.wait(lock, *node, stats_);
    stats_.on_resume();
    list_.leave(node);
    if constexpr (kLockFreeFastPath) maybe_clear_attention_locked();
  }

  bool check_until_steady(counter_value_t level,
                          std::chrono::steady_clock::time_point deadline) {
    stats_.on_check();
    std::unique_lock<std::mutex> lock(m_, std::defer_lock);
    if constexpr (kLockFreeFastPath) {
      MC_REQUIRE(level <= kMaxValue, "level exceeds counter range");
      if ((rep_.word.load(std::memory_order_acquire) >> 1) >= level) {
        stats_.on_fast_check();
        return true;
      }
      lock.lock();
      if (!announce_waiter_locked(level)) {
        stats_.on_fast_check();
        return true;
      }
    } else {
      lock.lock();
      if (rep_.value >= level) {
        stats_.on_fast_check();
        return true;
      }
    }
    Node* node = list_.acquire(level);
    stats_.on_suspend();
    const bool reached = policy_.wait_until(lock, *node, deadline, stats_);
    stats_.on_resume();
    list_.leave(node);
    if constexpr (kLockFreeFastPath) maybe_clear_attention_locked();
    return reached;
  }

  const Options options_;
  CounterStats stats_;  // declared before list_ (list_ references it)
  mutable std::mutex m_;
  detail::CounterValueRep<kLockFreeFastPath> rep_;
  [[no_unique_address]] Policy policy_;
  List list_;
  CallbackList callbacks_;
};

}  // namespace monotonic
