// basic_counter.hpp — the monotonic counter (the paper's primary
// contribution), as ONE engine with swappable waiting policies.
//
//   "A counter object has three basic attributes: (i) a nonnegative
//    integer value, (ii) an Increment operation, and (iii) a Check
//    operation.  The initial value of the counter is zero.  Increment
//    atomically increases the value of the counter by a specified
//    amount.  Check suspends the calling thread until the value of the
//    counter is greater than or equal to a specified level."  (§1)
//
// BasicCounter<WaitPolicy, ValuePlane> is two cooperating planes:
//
//   * the VALUE PLANE (second template parameter, value_plane.hpp /
//     striped_cells.hpp) owns the monotone value — how Increment
//     publishes into it, and when an incrementer must divert to the
//     locked slow path (the attention bit or the lowest-armed-level
//     watermark);
//   * the WAIT PLANE — this engine plus the policy — owns waiter
//     management: the per-level wait index (wait_list.hpp — §7's
//     ordered list, or the sharded heap index, selected by
//     Options::wait_plane behind one API), the OnReach callback index,
//     node pooling, stats, Reset, timed checks, poisoning,
//     cancellation, the stall watchdog and debug_snapshot().  The
//     policy (wait_policy.hpp) decides how a parked thread sleeps / a
//     released node wakes.
//
// The plane defaults to the storage each pre-plane counter used (an
// atomic word for lock-free policies, a mutex-guarded word for locking
// ones), so the five historical implementations are aliases:
//
//   Counter         = BasicCounter<BlockingWait>   (§7 reference)
//   SingleCvCounter = BasicCounter<SingleCvWait>   (broadcast baseline)
//   FutexCounter    = BasicCounter<FutexWait>
//   SpinCounter     = BasicCounter<SpinWait>
//   HybridCounter   = BasicCounter<HybridWait>
//
// and each grows a Sharded sibling that swaps in the striped plane
// (ShardedCounter, ShardedFutexCounter, ShardedSpinCounter,
// ShardedHybridCounter — see the per-alias headers), under which
// uncontended Increment is one fetch_add on a private cache line and
// waiters arm a watermark instead of a global attention bit.  Every
// instantiation uniformly supports CheckFor/CheckUntil, OnReach,
// Reset, pooled wait nodes and Figure-2 introspection, with identical
// checked-usage semantics.
//
// Deliberate API omissions, per §2:
//   * no Decrement — the value is monotone, so an enabled Check can
//     never become disabled; this is what makes counter synchronization
//     race-free and deterministic (§6);
//   * no Probe / value getter — a branch on the instantaneous value
//     would reintroduce timing-dependent behaviour.  Tests and benches
//     use debug_snapshot()/debug_value(), named so misuse is
//     conspicuous.
//
// Lock-free fast paths (planes with kLockFreeFastPath) follow one
// arm/re-check discipline, whatever the storage: a waiter arms the
// plane for its level *under the mutex* (setting the attention bit, or
// lowering the watermark), then re-checks the collapsed value.  The
// classic lost-wakeup hazard (value rises between the waiter's check
// and its enqueue) is closed because a racing Increment either sees
// the armed plane (and will take the mutex, which we hold first) or
// happened before our re-check (and we see its value).  The cost: the
// logical value is capped at 2^63-1 (headroom the planes spend on the
// flag bit / watermark sentinel), and increments that can cross an
// armed level each pay the lock.
//
// Failure model (engine extension — see counter_error.hpp).  §6's
// determinism argument assumes every awaited Increment eventually
// happens; when a producer dies it never will, and without help every
// consumer parks forever.  Three escape hatches, uniform across all
// policies:
//
//   * Poison(cause) freezes the value, wakes every parked waiter with
//     an "aborted" (not "reached") cause, and turns any Check above the
//     frozen value — resumed or future — into a CounterPoisonedError
//     carrying the producer's exception.  OnReach callbacks above the
//     frozen value are delivered to their optional error callback.
//     First poison wins; Increment on a poisoned counter is a counted
//     drop.  The frozen value is authoritative: on lock-free policies a
//     racing fetch_add can still inflate the atomic word after the
//     freeze, so every poisoned-path decision consults frozen_, never
//     the word.
//   * Check(level, stop_token) parks cancellably: a triggered token
//     nudges the policy (wake_waiters) and the call returns false
//     instead of sleeping on.
//   * The stall watchdog (Options::stall_report_after) re-arms an
//     internal timed wait under untimed Checks and surfaces a
//     CounterStallReport — value, wanted level, wait duration, full
//     wait-list shape — through Options::on_stall, so a lost Increment
//     is a diagnosable report instead of a silent hang.
//
// Resource model (engine extension — see counter_error.hpp and the
// admission fields of WaitListOptions).  The engine performs exactly
// two kinds of heap allocation, both under its mutex: wait-list nodes
// and OnReach callback nodes.  Both are strong-exception-safe: a
// std::bad_alloc (real, or injected through Env::alloc_point by the
// fault environment) unwinds with the counter exactly as it was — the
// armed watermark is restored, no half-linked node remains — and
// surfaces as CounterResourceError.  With preallocated_nodes sized to
// the expected waiter population, the steady state never allocates at
// all.  Bounded admission (max_waiters / max_levels) caps what a storm
// of checkers can pin; a waiter over the cap is handled per
// OverloadPolicy: rejected with CounterOverloadedError (kThrow),
// demoted to an allocation-free relock-poll wait (kSpinFallback), or
// blocked on an internal gate until capacity frees, queueing ahead of
// incrementer slow paths on the mutex (kBlockIncrementers).  All three
// keep poison, deadlines and cancellation live.
#pragma once

#include <algorithm>
#include <chrono>
#include <concepts>
#include <cstdio>
#include <exception>
#include <functional>
#include <limits>
#include <mutex>
#include <stop_token>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "monotonic/core/counter_error.hpp"
#include "monotonic/core/counter_stats.hpp"
#include "monotonic/core/engine_env.hpp"
#include "monotonic/core/value_plane.hpp"
#include "monotonic/core/wait_list.hpp"
#include "monotonic/core/wait_policy.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/support/config.hpp"

namespace monotonic {

namespace detail {

/// Converts an arbitrary-clock deadline to the steady clock the wait
/// engine runs on (`Env::Clock` — the real steady clock in production,
/// the virtual clock under simulation).  time_point_cast only converts
/// the duration type, not the epoch, so casting e.g. a system_clock
/// deadline directly would mis-time by the (enormous) epoch difference
/// — instead convert via a now()-delta against both clocks.
template <typename Env, typename Clock, typename Duration>
std::chrono::steady_clock::time_point to_steady_deadline(
    std::chrono::time_point<Clock, Duration> deadline) {
  if constexpr (std::is_same_v<Clock, std::chrono::steady_clock> &&
                std::is_same_v<typename Env::Clock,
                               std::chrono::steady_clock>) {
    return std::chrono::time_point_cast<std::chrono::steady_clock::duration>(
        deadline);
  } else {
    const auto delta = deadline - Clock::now();
    return Env::Clock::now() +
           std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               delta);
  }
}

/// True when `Plane` either doesn't name an engine environment (the
/// locking PlainValuePlane is environment-agnostic) or names the same
/// one as the policy — mixing a sim policy with a real-env plane would
/// compile but silently escape the scheduler.
template <typename Env, typename Plane, typename = void>
inline constexpr bool plane_env_matches_v = true;
template <typename Env, typename Plane>
inline constexpr bool
    plane_env_matches_v<Env, Plane, std::void_t<typename Plane::EngineEnv>> =
        std::is_same_v<Env, typename Plane::EngineEnv>;

}  // namespace detail

/// Monotonic counter per Thornley & Chandy, generic over the waiting
/// policy (see wait_policy.hpp for the policy contract) and the value
/// plane (value_plane.hpp / striped_cells.hpp for the plane contract).
template <typename Policy, typename Plane = detail::DefaultPlane<Policy>>
class BasicCounter {
 public:
  using WaitPolicy = Policy;
  using ValuePlane = Plane;
  /// The engine environment (engine_env.hpp): mutex, clock, atomics
  /// and schedule points, taken from the policy.  RealEngineEnv in
  /// every production alias; SimEngineEnv under the simulation
  /// harness.
  using Env = typename Policy::EngineEnv;
  static_assert(detail::plane_env_matches_v<Env, Plane>,
                "policy and value plane must share one engine environment");
  using Options = WaitListOptions;
  using DebugWaitLevel = monotonic::DebugWaitLevel;
  using DebugSnapshot = CounterDebugSnapshot;

  /// True when uncontended Increment / satisfied Check are lock-free —
  /// the PLANE's call, not the policy's: a striped plane gives lock-
  /// free fast paths to a locking policy (ShardedCounter pairs
  /// BlockingWait with StripedPlane).
  static constexpr bool kLockFreeFastPath = Plane::kLockFreeFastPath;

  /// Maximum representable value.  Lock-free planes spend headroom on
  /// the attention flag / watermark sentinel, halving the range.
  static constexpr counter_value_t kMaxValue = Plane::kMaxValue;

  BasicCounter() : BasicCounter(Options{}) {}
  explicit BasicCounter(const Options& options)
      : options_(options),
        plane_(options_, stats_),
        list_(options_, stats_),
        // The OnReach index shares the wait plane's representation: a
        // heap-plane counter must index a million callback levels at
        // the same O(log L) its parked waiters get.
        callbacks_(options_.wait_plane, list_.wait_shard_count()) {}

  /// Destroys the counter.  Precondition: no thread is suspended in
  /// Check() (checked; destruction with waiters aborts rather than
  /// corrupting them).  The fatal message includes a wait-list snapshot
  /// — value plus each stranded (level, waiters) pair — so the abort
  /// names who was left behind instead of just that somebody was.
  /// Unreached OnReach callbacks are dropped, not run: running "reached
  /// level L" callbacks for a level that was never reached would be a
  /// lie.
  ~BasicCounter() {
    std::scoped_lock lock(m_);
    if (list_.empty()) return;
    std::string msg =
        "counter destroyed with suspended waiters: value=" +
        std::to_string(value_locked());
    std::vector<DebugWaitLevel> levels;
    list_.snapshot_into(levels);
    for (const auto& entry : levels) {
      msg += ", level " + std::to_string(entry.level) + " x" +
             std::to_string(entry.waiters);
    }
    detail::assert_fail("list_.empty()", __FILE__, __LINE__, msg.c_str());
  }

  BasicCounter(const BasicCounter&) = delete;
  BasicCounter& operator=(const BasicCounter&) = delete;

  /// Atomically increases the value by `amount`, waking every thread
  /// suspended on a level <= the new value.  Increment(0) is a no-op.
  /// Overflow past kMaxValue is a checked usage error.  On a poisoned
  /// counter the increment is a silently-counted drop (never a throw:
  /// producers flushing buffered work during unwind must not die
  /// again), and a drop racing the freeze itself is benign — see the
  /// failure-model note in the header.
  void Increment(counter_value_t amount = 1) {
    if (poisoned_.load(std::memory_order_acquire)) {
      stats_.on_dropped_increment();
      return;
    }
    if constexpr (kLockFreeFastPath) {
      stats_.on_increment();
      if (amount == 0) return;
      Env::point(SchedulePoint::kIncrementFast);
      // The plane publishes the add lock-free (overflow-checked) and
      // reports whether a slow pass is required: the attention bit was
      // set, or the post-increment sum may cross the armed watermark.
      // Degraded pollers hold no wait node, so the armed watermark
      // cannot see them: while any exist, every increment takes the
      // slow pass so a value crossing wakes them through the gate
      // instead of after a nap-cap poll.  One relaxed load; zero when
      // the counter is unbounded or never overloads.
      if (!plane_.add_fast(amount) &&
          degraded_pollers_.load(std::memory_order_relaxed) == 0) {
        stats_.on_fast_increment();
        return;  // fast path: nobody parked below the new value
      }
      Env::point(SchedulePoint::kIncrementSlow);
      typename Callbacks::Node* reached = nullptr;
      {
        std::unique_lock lock(m_);
        reached = release_reached_locked();
      }
      // SingleCvWait-style policies broadcast here; the shipped lock-
      // free policies are no-ops.  Callbacks run outside the lock
      // (CP.22): they may re-enter this counter or any other.
      policy_.on_increment_unlocked(false);
      complete_chain(reached);
    } else {
      Env::point(SchedulePoint::kIncrementSlow);
      typename Callbacks::Node* reached = nullptr;
      {
        std::unique_lock lock(m_);
        // Locking planes mutate under m_, same as Poison: re-check so
        // increment-vs-poison is fully linearized (no frozen drift).
        if (poisoned_.load(std::memory_order_relaxed)) {
          stats_.on_dropped_increment();
          return;
        }
        stats_.on_increment();
        if (amount == 0) return;
        plane_.add_locked(amount);
        const counter_value_t value = plane_.collapse();
        const bool had_waiters = !list_.empty();
        list_.release_prefix(
            value, [&](Node& node) { policy_.on_release(node, stats_); });
        policy_.on_increment_locked(had_waiters, stats_);
        reached = callbacks_.detach_reached(value);
        notify_capacity_locked();  // released levels freed admission room
        notify_degraded_locked(value);
      }
      policy_.on_increment_unlocked(false);
      complete_chain(reached);
    }
  }

  /// Suspends the calling thread until value >= level.  Returns
  /// immediately if the level has already been reached.  Throws
  /// CounterPoisonedError if the counter is (or becomes) poisoned with
  /// its frozen value below `level`.
  void Check(counter_value_t level) {
    stats_.on_check();
    Env::point(SchedulePoint::kCheck);
    if constexpr (kLockFreeFastPath) {
      MC_REQUIRE(level <= kMaxValue, "level exceeds counter range");
      if (plane_.read_fast() >= level &&
          !poisoned_.load(std::memory_order_acquire)) {
        stats_.on_fast_check();  // lock-free success
        return;
      }
      std::unique_lock lock(m_);
      if (check_poisoned_locked(level)) return;
      if (!announce_waiter_locked(level)) {
        stats_.on_fast_check();
        return;
      }
      park(lock, level);
    } else {
      std::unique_lock lock(m_);
      if (check_poisoned_locked(level)) return;
      // Fast path (§7): "Check with a level less than or equal to the
      // current counter value returns immediately."
      if (plane_.read_locked() >= level) {
        stats_.on_fast_check();
        return;
      }
      park(lock, level);
    }
  }

  /// Predicate Check (extension): suspends until `pred(value)` holds.
  /// `pred` must be MONOTONE — once true at some value, true at every
  /// larger value — and is evaluated only against values the counter
  /// actually reached plus probes below them, never against a value
  /// "in the future" (docs/semantics.md, "Predicate waits").
  ///
  /// Because the value only rises, a monotone predicate over it is
  /// exactly a threshold: there is a least level L with pred(L), and
  /// waiting for the predicate IS waiting for L.  The engine finds L
  /// by galloping + binary search over [0, kMaxValue] — O(log V)
  /// evaluations, value-independent, no counter state touched — and
  /// then delegates to Check(L), inheriting the level wait's entire
  /// contract: selective wakeup through the armed watermark and the
  /// O(log L) level index, poison, admission, the stall watchdog.
  /// This is AutoSynch's predicate tagging specialised to monotone
  /// predicates: the "conservative trigger" is exact here, so no
  /// broadcast-and-recheck is ever needed.
  ///
  /// A predicate that never becomes true over the representable range
  /// is a checked usage error (it could never be signalled).
  template <typename Pred>
    requires(!std::convertible_to<Pred, counter_value_t> &&
             std::predicate<Pred&, counter_value_t>)
  void Check(Pred pred) {
    Check(predicate_level(pred));
  }

  /// Cancellable predicate Check: Check(pred) with Check(level, stop)'s
  /// cancellation contract (false = stop token fired first).
  template <typename Pred>
    requires(!std::convertible_to<Pred, counter_value_t> &&
             std::predicate<Pred&, counter_value_t>)
  bool Check(Pred pred, std::stop_token stop) {
    return Check(predicate_level(pred), std::move(stop));
  }

  /// Cancellable Check (extension): parks like Check, but a triggered
  /// `stop` wakes this thread and makes the call return false (level
  /// not reached) instead of sleeping on.  Returns true when the level
  /// was reached — including when the release races the cancellation.
  /// Throws CounterPoisonedError exactly like Check.
  bool Check(counter_value_t level, std::stop_token stop) {
    stats_.on_check();
    Env::point(SchedulePoint::kCheck);
    std::unique_lock<typename Env::Mutex> lock(m_, std::defer_lock);
    if constexpr (kLockFreeFastPath) {
      MC_REQUIRE(level <= kMaxValue, "level exceeds counter range");
      if (plane_.read_fast() >= level &&
          !poisoned_.load(std::memory_order_acquire)) {
        stats_.on_fast_check();
        return true;
      }
      lock.lock();
      if (check_poisoned_locked(level)) return true;
      if (!announce_waiter_locked(level)) {
        stats_.on_fast_check();
        return true;
      }
    } else {
      lock.lock();
      if (check_poisoned_locked(level)) return true;
      if (plane_.read_locked() >= level) {
        stats_.on_fast_check();
        return true;
      }
    }
    if (stop.stop_requested()) {  // pre-cancelled: don't even enqueue
      if constexpr (kLockFreeFastPath) rearm_locked();
      stats_.on_cancelled_check();
      return false;
    }
    switch (admit_locked(lock, level, nullptr, &stop)) {
      case Admit::kSatisfied:
        if constexpr (kLockFreeFastPath) rearm_locked();
        return true;
      case Admit::kDegrade: {
        const bool reached = degraded_wait_locked(lock, level, nullptr, &stop);
        if constexpr (kLockFreeFastPath) rearm_locked();
        if (!reached) stats_.on_cancelled_check();
        return reached;
      }
      case Admit::kCancelled:
        if constexpr (kLockFreeFastPath) rearm_locked();
        stats_.on_cancelled_check();
        return false;
      case Admit::kTimedOut:
        MC_ASSERT(false, "deadline outcome from an untimed admission");
        return false;
      case Admit::kProceed:
        break;
    }
    Node* node = acquire_node_locked(level);
    stats_.on_suspend();
    lock.unlock();
    {
      // The nudge callback takes m_, so the stop callback must be
      // constructed AND destroyed while m_ is NOT held: construction
      // runs the callback inline when the token already fired, and
      // destruction blocks on an in-flight invocation.  That dtor-block
      // is why the callback type comes from Env — the simulator has to
      // model the wait or its scheduler would hang.  The node stays
      // alive throughout: our registration (leave below) is still
      // outstanding.
      auto nudge_fn = [this, node] {
        Env::point(SchedulePoint::kCancel);
        std::scoped_lock wake_lock(m_);
        if (!node->released) policy_.wake_waiters(*node);
      };
      typename Env::template StopCallback<decltype(nudge_fn)> nudge(
          stop, std::move(nudge_fn));
      lock.lock();
      policy_.wait_cancellable(lock, *node, stop, stats_);
      lock.unlock();
    }
    lock.lock();
    stats_.on_resume();
    // Re-read the wake cause under the final lock: a release or poison
    // may have landed while the callback was being torn down.
    const bool aborted = node->aborted;
    const bool released = node->released;
    list_.leave(node);
    notify_capacity_locked();
    if constexpr (kLockFreeFastPath) rearm_locked();
    if (aborted) throw_poisoned(level);
    if (!released) {
      stats_.on_cancelled_check();
      return false;
    }
    return true;
  }

  /// Timed Check (extension): returns true if the level was reached,
  /// false on timeout.  A timed-out waiter unlinks itself; if it was
  /// the last waiter at its level the node is freed, preserving the
  /// O(live levels) storage bound.
  template <typename Rep, typename Period>
  bool CheckFor(counter_value_t level,
                std::chrono::duration<Rep, Period> timeout) {
    return check_until_steady(level, Env::Clock::now() + timeout);
  }

  /// Timed Check against an absolute deadline on any clock.  Non-steady
  /// clocks are converted via a now()-delta (see to_steady_deadline).
  template <typename Clock, typename Duration>
  bool CheckUntil(counter_value_t level,
                  std::chrono::time_point<Clock, Duration> deadline) {
    return check_until_steady(level,
                              detail::to_steady_deadline<Env>(deadline));
  }

  /// Asynchronous Check (extension): registers `fn` to run exactly once
  /// when the value reaches `level`.  If the level has already been
  /// reached, fn runs immediately in the calling thread; otherwise it
  /// runs in the thread whose Increment reaches the level, *after* that
  /// Increment has released the waiting threads and dropped the
  /// internal lock (so fn may freely call back into this or any other
  /// counter — C++ Core Guidelines CP.22).  Callbacks for one level run
  /// in registration order; across levels, in level order.
  ///
  /// This turns a counter into a dataflow trigger without parking a
  /// thread per dependency — the async analogue of Check.
  ///
  /// `on_error` is the poison analogue of fn: if the counter is (or
  /// becomes) poisoned with the frozen value below `level`, on_error
  /// receives the poison cause instead of fn running.  Registering on
  /// an already-poisoned counter with no on_error throws, mirroring
  /// Check; registered entries without one are dropped at poison time.
  void OnReach(counter_value_t level, std::function<void()> fn,
               std::function<void(std::exception_ptr)> on_error = {}) {
    if constexpr (kLockFreeFastPath) {
      MC_REQUIRE(level <= kMaxValue, "level exceeds counter range");
    }
    std::exception_ptr poison;
    {
      std::unique_lock lock(m_);
      if (poisoned_.load(std::memory_order_relaxed)) {
        if (frozen_ < level) {
          if (!on_error) throw_poisoned(level);
          poison = poison_cause_or_error();
        }
        // frozen_ >= level: the level WAS reached; fn runs below.
      } else {
        bool unreached;
        if constexpr (kLockFreeFastPath) {
          unreached = announce_waiter_locked(level);
        } else {
          unreached = plane_.read_locked() < level;
        }
        if (unreached) {
          try {
            callbacks_.insert(level, std::move(fn), std::move(on_error));
          } catch (const std::bad_alloc&) {
            // Strong guarantee: insert left the list untouched; restore
            // the watermark we armed and surface the typed error.
            if constexpr (kLockFreeFastPath) rearm_locked();
            throw CounterResourceError(
                "counter callback allocation failed: OnReach(" +
                std::to_string(level) + ") not registered, counter unchanged");
          }
          return;
        }
      }
    }
    // Callbacks run here, outside the lock (CP.22) — through the
    // completion plane, so an executor-configured counter delivers
    // immediate fires on the same context as deferred ones.
    if (poison) {
      complete_one([cb = std::move(on_error), poison] { cb(poison); });
    } else {
      complete_one(std::move(fn));
    }
  }

  /// Poisons the counter with the exception a producer failed with:
  /// freezes the value where it stands, wakes every parked waiter
  /// (their Checks throw CounterPoisonedError carrying `cause`), fails
  /// pending OnReach registrations into their error callbacks, and
  /// makes all future operations observe the failure (Checks at or
  /// below the frozen value still succeed — that work WAS done).
  /// Idempotent: the first poison wins, later ones are no-ops.  Safe to
  /// call from any thread, including concurrently with every other
  /// operation.
  void Poison(std::exception_ptr cause) {
    poison_impl(std::move(cause), "counter poisoned");
  }

  /// Poison with a bare reason when there is no exception in flight
  /// (e.g. an orderly shutdown path).  Checks above the frozen value
  /// throw CounterPoisonedError with this reason and a null cause().
  void Poison(std::string_view reason) { poison_impl(nullptr, reason); }

  /// True once Poison has taken effect.  Diagnostic only — racing a
  /// poisoned() probe against Check is exactly the timing-dependent
  /// branch the no-probe rule exists to prevent.
  bool poisoned() const noexcept {
    return poisoned_.load(std::memory_order_acquire);
  }

  /// Resets the value to zero for reuse between algorithm phases (§2).
  /// Must not be called concurrently with any other operation on this
  /// counter; calling it while threads are suspended or callbacks are
  /// pending is a checked error.  Reset also clears poison: the §2
  /// phase-reuse story is the one sanctioned way to bring a poisoned
  /// counter back into service.
  void Reset() {
    std::scoped_lock lock(m_);
    MC_REQUIRE(list_.empty(),
               "Reset called while threads are suspended (§2: Reset must not "
               "run concurrently with other operations)");
    if (!callbacks_.empty()) {
      // Pending registrations would be orphaned by the value rollback
      // (their levels may never be reached again) — refuse, naming the
      // levels so the caller can see exactly what is still waiting.
      std::vector<counter_value_t> pending;
      callbacks_.snapshot_into(pending);
      std::string msg = "Reset called with pending OnReach callbacks at level";
      if (pending.size() > 1) msg += 's';
      for (std::size_t i = 0; i < pending.size(); ++i) {
        msg += (i == 0 ? " " : ", ") + std::to_string(pending[i]);
      }
      throw CounterError(msg);
    }
    poisoned_.store(false, std::memory_order_release);
    poison_cause_ = nullptr;
    poison_reason_.clear();
    frozen_ = 0;
    plane_.reset();
  }

  /// Structural snapshot for tests and benches (Figure 2 reproduction).
  /// Application code must not branch on this — see the no-probe rule.
  DebugSnapshot debug_snapshot() const {
    std::scoped_lock lock(m_);
    DebugSnapshot snap;
    snap.value = value_locked();
    list_.snapshot_into(snap.wait_levels);
    callbacks_.snapshot_into(snap.callback_levels);
    return snap;
  }

  /// The instantaneous value, for tests/benches only (no-probe rule).
  /// On a poisoned counter this is the frozen value, not the (possibly
  /// drifted) lock-free word.
  counter_value_t debug_value() const {
    if (poisoned_.load(std::memory_order_acquire)) {
      return frozen_;  // stable after the release-store of poisoned_
    }
    if constexpr (kLockFreeFastPath) {
      return plane_.read_fast();
    } else {
      std::scoped_lock lock(m_);
      return plane_.read_locked();
    }
  }

  /// A monotone LOWER BOUND on the current value — the sanctioned read
  /// for the multi-counter predicate plane (core/multi.hpp): because
  /// the value only rises, a stale read is conservative, so trigger
  /// levels computed from it can only make a waiter re-check early,
  /// never miss a wakeup.  On a poisoned counter this is the frozen
  /// value.  Unlike debug_value() this is a documented part of the
  /// predicate-wait surface, not a test-only probe — but branching on
  /// it for control flow outside trigger computation reintroduces the
  /// races the no-probe rule exists to prevent.
  counter_value_t value_lower_bound() const {
    if (poisoned_.load(std::memory_order_acquire)) {
      return frozen_;  // stable after the release-store of poisoned_
    }
    if constexpr (kLockFreeFastPath) {
      return plane_.read_fast();
    } else {
      std::scoped_lock lock(m_);
      return plane_.read_locked();
    }
  }

  /// Number of value-plane stripes (1 for unsharded planes).
  std::size_t stripe_count() const noexcept { return plane_.stripe_count(); }

  /// Which wait-plane representation this counter runs (WaitIndex
  /// seam: the §7 ordered list, or the sharded level index).
  WaitPlaneKind wait_plane() const noexcept { return list_.kind(); }
  /// Number of wait-plane shards (1 for the list plane).
  std::size_t wait_shard_count() const noexcept {
    return list_.wait_shard_count();
  }

  /// Structural statistics since construction (or stats_reset()).
  CounterStatsSnapshot stats() const noexcept { return stats_.snapshot(); }
  void stats_reset() noexcept { stats_.reset(); }

 private:
  using Signal = typename Policy::Signal;
  using List = WaitList<Signal, Env>;
  using Node = typename List::Node;
  /// The callback list over THIS engine's environment, so its
  /// allocations hit the same Env::alloc_point fault hook as wait
  /// nodes.  (The file-scope CallbackList alias is the RealEngineEnv
  /// instantiation.)
  using Callbacks = CallbackListT<Env>;

  // Requires m_ (meaningless for locking planes, whose value is only
  // ever read under m_ anyway).  frozen_ is authoritative once
  // poisoned: the lock-free plane may have drifted past the freeze.
  counter_value_t value_locked() const {
    if (poisoned_.load(std::memory_order_relaxed)) return frozen_;
    return plane_.read_locked();
  }

  // Reduces a monotone predicate to its exact threshold: the least L
  // in [0, kMaxValue] with pred(L), found by galloping then binary
  // search — O(log V) evaluations, no counter state read (the search
  // is over the VALUE DOMAIN, not the current value, so it cannot race
  // anything).  An unsatisfiable predicate is a checked usage error.
  template <typename Pred>
  counter_value_t predicate_level(Pred& pred) {
    stats_.on_predicate_check();
    Env::point(SchedulePoint::kPredicateEval);
    if (pred(counter_value_t{0})) return 0;
    MC_REQUIRE(pred(kMaxValue),
               "Check(pred): predicate is false at the maximum counter "
               "value, so it can never be signalled (is it monotone?)");
    // Invariant: !pred(lo) && pred(hi).  Gallop hi up, then bisect.
    counter_value_t lo = 0;
    counter_value_t hi = 1;
    while (hi < kMaxValue && !pred(hi)) {
      lo = hi;
      hi = hi <= kMaxValue / 2 ? hi * 2 : kMaxValue;
    }
    while (hi - lo > 1) {
      const counter_value_t mid = lo + (hi - lo) / 2;
      if (pred(mid)) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    return hi;
  }

  // Requires m_.  Returns true when the caller should return success
  // (level at or below the frozen value); throws when the level can
  // never be reached; returns false on a healthy counter.
  bool check_poisoned_locked(counter_value_t level) {
    if (!poisoned_.load(std::memory_order_relaxed)) return false;
    if (frozen_ >= level) {
      stats_.on_fast_check();
      return true;
    }
    throw_poisoned(level);
  }

  // Requires poisoned_ observed true (under m_ or via acquire load):
  // frozen_ / poison_reason_ / poison_cause_ are immutable from the
  // release-store of poisoned_ until a (non-concurrent) Reset.
  [[noreturn]] void throw_poisoned(counter_value_t level) const {
    throw CounterPoisonedError(
        poison_reason_ + ": Check(" + std::to_string(level) +
            ") can never complete, value frozen at " + std::to_string(frozen_),
        poison_cause_);
  }

  // Same precondition as throw_poisoned.  The exception delivered to
  // OnReach error callbacks: the producer's own exception when there is
  // one, a synthesized CounterPoisonedError otherwise.
  std::exception_ptr poison_cause_or_error() const {
    if (poison_cause_) return poison_cause_;
    return std::make_exception_ptr(CounterPoisonedError(poison_reason_));
  }

  void poison_impl(std::exception_ptr cause, std::string_view reason) {
    Env::point(SchedulePoint::kPoison);
    typename Callbacks::Node* orphaned = nullptr;
    std::exception_ptr delivered;
    {
      std::unique_lock lock(m_);
      if (poisoned_.load(std::memory_order_relaxed)) return;  // first wins
      frozen_ = value_locked();
      poison_cause_ = std::move(cause);
      poison_reason_ = std::string(reason);
      // Release-store AFTER the freeze state is in place: an acquire
      // load of poisoned_ licenses lock-free reads of frozen_ & co.
      poisoned_.store(true, std::memory_order_release);
      if constexpr (kLockFreeFastPath) {
        // Pin the plane closed (never rearmed again — see
        // rearm_locked) so in-flight incrementers that passed the
        // poison pre-check drain through the locked slow path instead
        // of racing the frozen value on the fast one.
        plane_.pin();
      }
      stats_.on_poison();
      const bool had_waiters = !list_.empty();
      list_.abort_all([&](Node& node) { policy_.on_release(node, stats_); });
      // Mirror Increment's release sequence: policies whose wake lives
      // in the increment hooks rather than on_release (SingleCvWait's
      // shared-cv broadcast) must fire here too, or poisoned waiters
      // sleep forever.
      policy_.on_increment_locked(had_waiters, stats_);
      orphaned = callbacks_.detach_all();
      if (orphaned != nullptr) delivered = poison_cause_or_error();
      // Gate-blocked waiters must observe the poison too: abort_all
      // freed every level, and even if it hadn't, their next admission
      // re-check throws/returns per the frozen value.
      notify_capacity_locked();
      // Degraded pollers likewise: poison settles every level, so wake
      // them all (kNoDegradedFloor compares >= any published floor).
      notify_degraded_locked(kNoDegradedFloor);
    }
    policy_.on_increment_unlocked(false);
    complete_chain_error(orphaned, delivered);
  }

  // ---- Async completion plane (completion.hpp) ---------------------

  // Delivers a detached reached-callback chain: inline on this thread
  // when no executor is configured (bit-for-bit the pre-executor
  // semantics), else posted to the executor — the incrementer's cost
  // returns to O(detach) no matter how slow the callbacks are.  The
  // chain is already unlinked from the counter, so the posted closure
  // owns it outright; run_chain frees the nodes either way.
  void complete_chain(typename Callbacks::Node* chain) {
    if (chain == nullptr) return;
    if (options_.completion_executor == nullptr) {
      Callbacks::run_chain(chain);
      return;
    }
    Env::point(SchedulePoint::kCompletionEnqueue);
    stats_.on_async_completion();
    options_.completion_executor->post(
        [chain] { Callbacks::run_chain(chain); });
  }

  // Single-callback variant for OnReach's already-reached (or already-
  // poisoned) immediate fire: with an executor configured even the
  // immediate path posts, so callbacks observe ONE delivery context —
  // never "sometimes the registering thread, sometimes a pool thread".
  void complete_one(std::function<void()> work) {
    if (options_.completion_executor == nullptr) {
      work();
      return;
    }
    Env::point(SchedulePoint::kCompletionEnqueue);
    stats_.on_async_completion();
    options_.completion_executor->post(std::move(work));
  }

  // Poison-delivery analogue: error callbacks ride the same queue, so
  // an executor-configured counter delivers CounterPoisonedError
  // asynchronously too (and resumes awaiting coroutines there).
  void complete_chain_error(typename Callbacks::Node* chain,
                            std::exception_ptr cause) {
    if (chain == nullptr) return;
    if (options_.completion_executor == nullptr) {
      Callbacks::run_chain_error(chain, cause);
      return;
    }
    Env::point(SchedulePoint::kCompletionEnqueue);
    stats_.on_async_completion();
    options_.completion_executor->post([chain, cause = std::move(cause)] {
      Callbacks::run_chain_error(chain, cause);
    });
  }

  // Lock-free planes only; requires m_.  Publishes intent to sleep (or
  // to register a callback) by arming the plane for `level`, then
  // re-checks the collapsed value: any Increment that races past the
  // arming either sees the armed plane (and will queue behind m_) or
  // happened before our re-read (and we see its value).  Returns true
  // when the caller should proceed to park/register; false when the
  // level turned out to be reached already.
  bool announce_waiter_locked(counter_value_t level) {
    Env::point(SchedulePoint::kArm);
    policy_.on_publish(level, stats_);
    if (plane_.arm(level) >= level) {
      rearm_locked();
      return false;
    }
    return true;
  }

  // Lock-free planes only; requires m_.  Recomputes the lowest armed
  // level from the (ascending) wait and callback lists and hands it to
  // the plane: the word plane reopens its fast path when nothing is
  // armed; the striped plane raises its watermark so increments below
  // the remaining waiters go back to skipping the mutex.  A poisoned
  // counter stays pinned forever: the fast path must stay closed so
  // frozen_ (not the drifted plane) decides everything.
  void rearm_locked() {
    Env::point(SchedulePoint::kRearm);
    if (poisoned_.load(std::memory_order_relaxed)) return;
    const counter_value_t lowest =
        std::min(list_.min_level(), callbacks_.min_level());
    plane_.rearm(lowest);
    policy_.on_watermark(lowest, stats_);
  }

  // Lock-free planes only; requires m_.  Collapses the plane, releases
  // every reached wait node, detaches reached callbacks (run them
  // after unlocking).
  typename Callbacks::Node* release_reached_locked() {
    Env::point(SchedulePoint::kCollapse);
    const counter_value_t value = plane_.collapse();
    const bool had_waiters = !list_.empty();
    list_.release_prefix(
        value, [&](Node& node) { policy_.on_release(node, stats_); });
    policy_.on_increment_locked(had_waiters, stats_);
    typename Callbacks::Node* reached = callbacks_.detach_reached(value);
    rearm_locked();
    notify_capacity_locked();  // released levels freed admission room
    notify_degraded_locked(value);
    return reached;
  }

  // ---- Resource model: admission, degraded waits, typed allocation --

  /// Outcome of the admission check a would-be waiter runs before it
  /// may acquire a wait node (see the resource-model note up top).
  enum class Admit : std::uint8_t {
    kProceed,    ///< capacity available: acquire a node and park
    kDegrade,    ///< kSpinFallback: run the allocation-free poll wait
    kSatisfied,  ///< level reached (or frozen at/above it) while gated
    kTimedOut,   ///< gate wait exhausted the caller's deadline
    kCancelled,  ///< gate wait observed the caller's stop token
  };

  // Requires m_, counter healthy, level unreached (and, on lock-free
  // planes, the plane armed for it).  Enforces max_waiters/max_levels
  // per the configured OverloadPolicy.  kThrow restores the armed
  // watermark and rejects — the counter is untouched.  kSpinFallback
  // hands the caller to degraded_wait_locked.  kBlockIncrementers naps
  // on the gate (m_ released) until capacity frees; each wake re-runs
  // the poison / value / stop / deadline checks a parked waiter would,
  // so a gated thread can never be stranded.  Deadline- or stop-aware
  // callers pass those in; the gate then sleeps in bounded quanta so
  // neither can be slept through.
  Admit admit_locked(std::unique_lock<typename Env::Mutex>& lock,
                     counter_value_t level,
                     const std::chrono::steady_clock::time_point* deadline,
                     const std::stop_token* stop) {
    if (!list_.bounded()) return Admit::kProceed;
    bool counted = false;
    while (list_.admission_would_exceed(level)) {
      switch (options_.overload_policy) {
        case OverloadPolicy::kThrow:
          stats_.on_overload_rejection();
          if constexpr (kLockFreeFastPath) rearm_locked();
          throw CounterOverloadedError(
              "counter overloaded: Check(" + std::to_string(level) +
              ") rejected by admission control (waiters=" +
              std::to_string(list_.waiter_count()) +
              ", levels=" + std::to_string(list_.live_level_count()) + ")");
        case OverloadPolicy::kSpinFallback:
          stats_.on_overload_rejection();
          return Admit::kDegrade;
        case OverloadPolicy::kBlockIncrementers: {
          if (!counted) {  // once per gated entry, not per gate wake
            stats_.on_overload_rejection();
            counted = true;
          }
          if (deadline == nullptr && stop == nullptr) {
            gate_.wait(lock);
          } else {
            // Bounded nap: the gate has no per-caller wake channel for
            // stop tokens, and a deadline must cut the sleep short.
            auto until = Env::Clock::now() + std::chrono::milliseconds(1);
            if (deadline != nullptr) until = std::min(until, *deadline);
            gate_.wait_until(lock, until);
          }
          if (check_poisoned_locked(level)) return Admit::kSatisfied;
          if (collapse_locked() >= level) return Admit::kSatisfied;
          if (stop != nullptr && stop->stop_requested()) {
            return Admit::kCancelled;
          }
          if (deadline != nullptr && Env::Clock::now() >= *deadline) {
            return Admit::kTimedOut;
          }
          break;
        }
      }
    }
    return Admit::kProceed;
  }

  // kSpinFallback degraded wait: the waiter was refused a wait node, so
  // it polls the collapsed value instead.  No allocation and no
  // wait-list presence, so overload cannot cascade into more overload.
  // Poison, deadlines and stop tokens stay live because every probe
  // runs the same checks a parked waiter runs on wake.
  //
  // Probe pacing is two-phase.  The first kDegradedSpinProbes probes
  // relock m_ with the environment spinner in between (pause-only) — a
  // waiter turned away during a momentary burst still wakes in
  // microseconds.  After that, each probe naps on the capacity gate
  // with the nap doubling from kDegradedNapFloor up to kDegradedNapCap,
  // clamped to the caller's deadline.  A fixed sub-millisecond probe
  // interval here is the E12 storm pathology: 10k degraded waiters
  // each relocking the engine mutex every ~100µs is ~10^8 lock
  // round-trips per second demanded of the machine, and every probe
  // also evicts the line the incrementers need — the degraded plan
  // costs 170x the kThrow plan it is supposed to undercut.  The gate
  // nap keeps the probe budget O(waiters / cap) per second, and the
  // gate (not a raw sleep) keeps the sim deterministic and the mutex
  // released while napping.
  //
  // Naps are not the wake path, only the fallback: a napping poller
  // registers itself (degraded_pollers_ / degraded_floor_) and the
  // increment and poison slow paths broadcast the gate the moment the
  // collapsed value crosses the lowest registered level — see
  // notify_degraded_locked.  That is what lets the cap sit at 250ms
  // (a probe budget of O(waiters/cap) ≈ 4/s each) without costing
  // 250ms of exit latency: under overload the wake is a notify, and
  // the cap-paced poll only covers value crossings no slow pass
  // observed.
  //
  // Returns true when the level was reached, false on deadline/stop
  // (the caller bumps the corresponding stat); throws on poison below
  // the level.
  bool degraded_wait_locked(std::unique_lock<typename Env::Mutex>& lock,
                            counter_value_t level,
                            const std::chrono::steady_clock::time_point*
                                deadline,
                            const std::stop_token* stop) {
    stats_.on_degraded_wait();
    // Registration: counted in on entry, counted out on every exit
    // (returns and the poison throw all unwind with m_ held).  The
    // last poller out resets the floor so a dead registration can
    // never keep increments off the fast path or trigger broadcasts.
    degraded_pollers_.store(
        degraded_pollers_.load(std::memory_order_relaxed) + 1);
    struct PollerScope {
      BasicCounter& c;
      ~PollerScope() {
        const std::size_t left =
            c.degraded_pollers_.load(std::memory_order_relaxed) - 1;
        c.degraded_pollers_.store(left);
        if (left == 0) c.degraded_floor_ = kNoDegradedFloor;
      }
    } scope{*this};
    typename Env::SpinWaiter spinner;
    std::chrono::nanoseconds nap{0};
    for (;;) {
      if (check_poisoned_locked(level)) return true;
      if (collapse_locked() >= level) return true;
      if (stop != nullptr && stop->stop_requested()) return false;
      if (deadline != nullptr && Env::Clock::now() >= *deadline) return false;
      if (spinner.spins() < detail::kDegradedSpinProbes) {
        lock.unlock();
        spinner.once();
        lock.lock();
      } else {
        nap = nap.count() == 0
                  ? std::chrono::nanoseconds(detail::kDegradedNapFloor)
                  : std::min<std::chrono::nanoseconds>(
                        nap * 2, detail::kDegradedNapCap);
        auto until = Env::Clock::now() + nap;
        if (deadline != nullptr) {
          until = std::min(until, *deadline);
        }
        // Publish the level the wake broadcast must cover.  Re-done
        // before every nap because the broadcast consumes the floor:
        // a poller the wake did not satisfy re-tightens it here.
        degraded_floor_ = std::min(degraded_floor_, level);
        // Gate wakes NOT aimed at us (capacity notifications for
        // kBlockIncrementers waiters) just cost one early probe; the
        // nap length is retained, not reset, so backoff still holds.
        gate_.wait_until(lock, until);
      }
    }
  }

  // Requires m_.  WaitList::acquire with its strong guarantee surfaced
  // through the engine's error taxonomy: on bad_alloc (real or injected
  // at Env::alloc_point) the watermark the caller armed is restored and
  // the failure rethrown typed — the counter is exactly as it was and
  // stays fully usable.
  Node* acquire_node_locked(counter_value_t level) {
    try {
      return list_.acquire(level);
    } catch (const std::bad_alloc&) {
      if constexpr (kLockFreeFastPath) rearm_locked();
      throw CounterResourceError(
          "counter wait-node allocation failed: Check(" +
          std::to_string(level) + ") aborted, counter state unchanged");
    }
  }

  // Requires m_.  The linearized value, whatever the plane.
  counter_value_t collapse_locked() {
    if constexpr (kLockFreeFastPath) {
      return plane_.collapse();
    } else {
      return plane_.read_locked();
    }
  }

  // Requires m_.  Wakes gate-blocked waiters after a transition that
  // can free admission capacity (a waiter left, released/aborted levels
  // were unlinked).  No-op unless the blocking policy is configured.
  void notify_capacity_locked() {
    if (list_.bounded() &&
        options_.overload_policy == OverloadPolicy::kBlockIncrementers) {
      gate_.notify_all();
    }
  }

  // Requires m_.  Wakes degraded pollers once the collapsed value (or
  // the poison freeze) reaches the lowest level any of them waits for.
  // The floor is CONSUMED by the broadcast: pollers the wake does not
  // satisfy re-publish their level before the next nap, so a value
  // crossing costs one broadcast total — not one per later increment
  // against a stale floor.  No-op (one relaxed load) while nobody is
  // degraded, i.e. always, outside an overload.
  void notify_degraded_locked(counter_value_t value) {
    if (degraded_pollers_.load(std::memory_order_relaxed) == 0) return;
    if (value < degraded_floor_) return;
    degraded_floor_ = kNoDegradedFloor;
    gate_.notify_all();
  }

  void park(std::unique_lock<typename Env::Mutex>& lock,
            counter_value_t level) {
    switch (admit_locked(lock, level, nullptr, nullptr)) {
      case Admit::kSatisfied:
        if constexpr (kLockFreeFastPath) rearm_locked();
        return;
      case Admit::kDegrade:
        // No deadline, no stop: the degraded wait returns only on
        // success (or throws on poison).
        degraded_wait_locked(lock, level, nullptr, nullptr);
        if constexpr (kLockFreeFastPath) rearm_locked();
        return;
      case Admit::kTimedOut:
      case Admit::kCancelled:
        MC_ASSERT(false, "timed/cancel outcome from an untimed admission");
        return;
      case Admit::kProceed:
        break;
    }
    Node* node = acquire_node_locked(level);
    stats_.on_suspend();
    if (options_.stall_report_after.count() > 0) {
      wait_with_watchdog(lock, *node, level);
    } else {
      policy_.wait(lock, *node, stats_);
    }
    stats_.on_resume();
    const bool aborted = node->aborted;
    list_.leave(node);
    notify_capacity_locked();
    if constexpr (kLockFreeFastPath) rearm_locked();
    if (aborted) throw_poisoned(level);
  }

  // Untimed park with the stall watchdog armed: sleep in stall-sized
  // quanta; each elapsed quantum with the node still unreleased builds
  // a CounterStallReport under the lock and delivers it outside (the
  // sink may log, allocate, or poke other counters).  Our wait-list
  // registration is still outstanding across the unlocked window, so
  // the node cannot be freed; `released` is re-read after relocking.
  //
  // The report deadline is computed ONCE per wait (started + interval)
  // and advanced by exactly one interval per delivered report — never
  // re-derived from now() inside the loop.  Re-deriving it would let
  // anything that makes wait_until return early without a release (an
  // early policy return, a slow on_stall sink eating wall-clock before
  // the next quantum is armed) push the next report deadline out
  // again, postponing the first report indefinitely and letting the
  // cadence drift by the sink's own latency; a fixed schedule keeps
  // report N at started + N*interval.  (Found/covered by the sim
  // harness's watchdog_cadence scenario.)
  void wait_with_watchdog(std::unique_lock<typename Env::Mutex>& lock,
                          Node& node, counter_value_t level) {
    const auto started = Env::Clock::now();
    auto report_at = started + options_.stall_report_after;
    while (!node.released) {
      if (policy_.wait_until(lock, node, report_at, stats_)) return;
      if (node.released) return;
      if (Env::Clock::now() < report_at) continue;  // early return, no stall
      Env::point(SchedulePoint::kStall);
      CounterStallReport report;
      report.value = value_locked();
      report.level = level;
      report.waited = std::chrono::duration_cast<std::chrono::milliseconds>(
          Env::Clock::now() - started);
      list_.snapshot_into(report.wait_levels);
      report.wait_plane = list_.kind();
      report.wait_shards = list_.wait_shard_count();
      stats_.on_stall_report();
      lock.unlock();
      deliver_stall(report);
      lock.lock();
      report_at += options_.stall_report_after;
    }
  }

  void deliver_stall(const CounterStallReport& report) const {
    if (options_.on_stall) {
      options_.on_stall(report);
      return;
    }
    std::fprintf(stderr,
                 "monotonic: counter stall: Check(%llu) parked %lld ms at "
                 "value %llu with %zu live wait level(s) on the %s wait "
                 "plane (%zu shard(s))\n",
                 static_cast<unsigned long long>(report.level),
                 static_cast<long long>(report.waited.count()),
                 static_cast<unsigned long long>(report.value),
                 report.wait_levels.size(), to_string(report.wait_plane),
                 report.wait_shards);
  }

  bool check_until_steady(counter_value_t level,
                          std::chrono::steady_clock::time_point deadline) {
    stats_.on_check();
    Env::point(SchedulePoint::kCheck);
    std::unique_lock<typename Env::Mutex> lock(m_, std::defer_lock);
    if constexpr (kLockFreeFastPath) {
      MC_REQUIRE(level <= kMaxValue, "level exceeds counter range");
      if (plane_.read_fast() >= level &&
          !poisoned_.load(std::memory_order_acquire)) {
        stats_.on_fast_check();
        return true;
      }
      lock.lock();
      if (check_poisoned_locked(level)) return true;
      if (!announce_waiter_locked(level)) {
        stats_.on_fast_check();
        return true;
      }
    } else {
      lock.lock();
      if (check_poisoned_locked(level)) return true;
      if (plane_.read_locked() >= level) {
        stats_.on_fast_check();
        return true;
      }
    }
    // Zero or already-expired deadline: a pure reached-yet probe.  Skip
    // the wait-node acquire entirely — no node churn, no policy sleep.
    if (Env::Clock::now() >= deadline) {
      if constexpr (kLockFreeFastPath) rearm_locked();
      stats_.on_timed_out_check();
      return false;
    }
    switch (admit_locked(lock, level, &deadline, nullptr)) {
      case Admit::kSatisfied:
        if constexpr (kLockFreeFastPath) rearm_locked();
        return true;
      case Admit::kDegrade: {
        const bool reached = degraded_wait_locked(lock, level, &deadline,
                                                  nullptr);
        if constexpr (kLockFreeFastPath) rearm_locked();
        if (!reached) stats_.on_timed_out_check();
        return reached;
      }
      case Admit::kTimedOut:
        if constexpr (kLockFreeFastPath) rearm_locked();
        stats_.on_timed_out_check();
        return false;
      case Admit::kCancelled:
        MC_ASSERT(false, "cancel outcome from an uncancellable admission");
        return false;
      case Admit::kProceed:
        break;
    }
    Node* node = acquire_node_locked(level);
    stats_.on_suspend();
    const bool reached = policy_.wait_until(lock, *node, deadline, stats_);
    stats_.on_resume();
    const bool aborted = node->aborted;
    list_.leave(node);
    notify_capacity_locked();
    if constexpr (kLockFreeFastPath) rearm_locked();
    if (aborted) throw_poisoned(level);
    // Timed-out vs reached is decided HERE, once, from the policy's
    // return — never inside the policy as well.  A spurious wake landing
    // just before the deadline makes some policies' wait_until return
    // through the timeout arm after the engine already observed the
    // wake; a second accounting site would double-count it (pinned by
    // the fault harness's spurious_wake_timed_stats scenario).
    if (!reached) stats_.on_timed_out_check();
    return reached;
  }

  const Options options_;
  CounterStats stats_;  // declared before plane_/list_ (they reference it)
  mutable typename Env::Mutex m_;
  Plane plane_;  // the value plane (value_plane.hpp / striped_cells.hpp)
  [[no_unique_address]] Policy policy_;
  List list_;
  Callbacks callbacks_;
  // Admission gate for OverloadPolicy::kBlockIncrementers: over-cap
  // waiters nap here (m_ released) until capacity frees — woken by
  // leave/release/abort transitions via notify_capacity_locked.
  // kSpinFallback degraded pollers nap on the same gate, woken by
  // value/poison transitions via notify_degraded_locked.
  typename Env::CondVar gate_;

  // Degraded-poller wake state (kSpinFallback).  degraded_pollers_
  // counts waiters currently inside degraded_wait_locked;
  // degraded_floor_ is the lowest level any napping poller has
  // published (kNoDegradedFloor when none).  Both are written only
  // under m_; the counter is atomic solely so the lock-free Increment
  // fast path can ask "anyone degraded?" without taking the lock.
  static constexpr counter_value_t kNoDegradedFloor =
      std::numeric_limits<counter_value_t>::max();
  typename Env::template Atomic<std::size_t> degraded_pollers_{0};
  counter_value_t degraded_floor_ = kNoDegradedFloor;

  // Poison state.  The three payload fields are written under m_
  // strictly before the release-store of poisoned_ and never mutated
  // again (Reset excepted, which is documented non-concurrent), so an
  // acquire load of poisoned_ licenses reading them without the lock.
  typename Env::template Atomic<bool> poisoned_{false};
  counter_value_t frozen_ = 0;
  std::exception_ptr poison_cause_;
  std::string poison_reason_;
};

}  // namespace monotonic
