// shared_counter.hpp — SharedCounter: the monotone counter across
// PROCESS boundaries, with robust-futex-style death recovery.
//
// Everything else in the repo assumes one address space: the poison
// model (PR 2) and the overload policies (PR 5) protect waiters from
// sibling *threads* failing, but a process that dies mid-Increment
// would leave cross-process waiters parked forever — nobody is left in
// the dead process to run its unwind.  SharedCounter closes that gap
// the way robust futexes do for mutexes:
//
//   1. the protocol state lives in a mapped segment no single process
//      owns (shared_segment.hpp) — value word, futex wait word, and a
//      registration table;
//   2. every participating process REGISTERS (claims a slot holding
//      its pid) before touching the counter, and deregisters only on
//      clean detach;
//   3. a DEATH DETECTOR — run by whoever is around: on every wait
//      timeout slice and on a sampled Increment slow path — sweeps the
//      registration table with kill(pid, 0) (and, opt-in, heartbeat
//      staleness as the pid-reuse backstop).  A registered pid that no
//      longer exists did not detach cleanly, so its process died with
//      unknown obligations outstanding — the counter can no longer
//      promise that awaited increments will arrive, and the detector
//      poisons the epoch;
//   4. poisoning bumps the shared futex word and wakes ALL waiters in
//      ALL processes, who classify on the segment's poison code and
//      throw CounterPoisonedError{kParticipantDied}.  Late joiners see
//      the code immediately.  The name is recovered by a fresh
//      Create(), which bumps the epoch; handles from the old epoch
//      observe the mismatch and fail with kEpochSuperseded rather than
//      mixing generations.
//
// There is one semantic asymmetry worth stating: a waiter whose level
// is ALREADY covered by the value succeeds even on a poisoned counter
// — those increments really happened; poison only refuses waits on
// increments that can now never come.  This mirrors BasicCounter.
//
// Why waiters use BOUNDED futex sleeps: a parked waiter cannot rely on
// any other process surviving to run the detector for it.  Sleeping in
// detector-period slices makes every waiter its own detector of last
// resort — the acceptance bound "all waiters observe the poison within
// the detector period" holds even when the dying child was the only
// other participant.
//
// SharedCounterT is a standalone engine rather than a BasicCounter
// instantiation: the in-process wait planes are heap-linked structures
// (wait nodes, callback chains) that cannot live at fixed offsets in a
// mapped segment, and — the ActiveMonitor lesson — we deliberately
// keep the shared state free of anything only its owner could repair.
// A mutex in shared memory would be exactly such a thing; the futex
// generation word, which any survivor can bump, is not.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <new>
#include <stop_token>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "monotonic/core/counter_error.hpp"
#include "monotonic/core/counter_stats.hpp"
#include "monotonic/core/engine_env.hpp"
#include "monotonic/core/shared_segment.hpp"
#include "monotonic/core/wait_list.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/support/config.hpp"

#if !defined(_WIN32)
#include <signal.h>
#include <unistd.h>
#endif

#if !defined(_WIN32)

namespace monotonic {

/// The shared counter's environment trait.  Narrower than the engine
/// Env (engine_env.hpp) — no mutex/condvar/stripe machinery, because
/// the shared protocol is pure atomics + futex — but wider in one
/// dimension: it owns the PROCESS-level primitives (pid, liveness
/// probe, cross-process futex) the in-process engine never needed.
/// Tests substitute an env whose point() raises SIGKILL on a chosen
/// protocol step; the segment layout is env-independent, so handles
/// with different envs interoperate on one segment.
struct SharedRealEnv {
  static void point(SchedulePoint) noexcept {}

  static std::uint32_t pid() noexcept {
    return static_cast<std::uint32_t>(::getpid());
  }

  /// Liveness probe: kill(pid, 0) delivers no signal, only an
  /// existence check.  ESRCH = gone; EPERM = exists but unsignalable
  /// (still alive); success = alive — except that a zombie still
  /// answers kill(pid, 0).  A zombie can never finish its in-flight
  /// increment (its address space is gone; only the exit status
  /// lingers until the parent reaps it), and a parent that parks on
  /// the counter BEFORE waitpid()ing a SIGKILLed child would hang
  /// every waiter in every process if zombies counted as alive.  On
  /// Linux, read the state field of /proc/<pid>/stat and treat 'Z'
  /// as dead.
  static bool process_alive(std::uint32_t pid) noexcept {
    if (::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH) {
      return false;
    }
#if defined(__linux__)
    char path[48];
    std::snprintf(path, sizeof(path), "/proc/%u/stat", pid);
    std::FILE* f = std::fopen(path, "r");
    if (f == nullptr) return true;  // raced with reaping; next sweep settles
    char buf[512];
    const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    buf[n] = '\0';
    // Format: "pid (comm) S ..." where comm may itself contain ')';
    // the state letter follows the LAST ')'.
    const char* close = std::strrchr(buf, ')');
    if (close != nullptr && close[1] == ' ' && close[2] == 'Z') {
      return false;
    }
#endif
    return true;
  }

  static std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  static bool futex_wait_until(std::atomic<std::uint32_t>* addr,
                               std::uint32_t expected,
                               std::chrono::steady_clock::time_point deadline) {
    return detail::shared_futex_wait_until(addr, expected, deadline);
  }
  static void futex_wake_all(std::atomic<std::uint32_t>* addr) {
    detail::shared_futex_wake_all(addr);
  }
};

/// Tuning for one handle (not stored in the segment: different
/// processes may legitimately run different detector cadences).
struct SharedCounterOptions {
  /// How often a parked waiter re-arms to sweep for deaths, and the
  /// bound on how stale a poison observation can be.  Also the sleep
  /// slice granularity, so don't set it below a few milliseconds.
  std::chrono::milliseconds detect_period{std::chrono::milliseconds(100)};
  /// Opt-in heartbeat staleness threshold — the pid-reuse backstop
  /// (kill(pid,0) cannot distinguish a recycled pid from the original).
  /// ZERO DISABLES IT, and that is the right default: an idle-but-alive
  /// participant stops stamping its heartbeat, and a nonzero threshold
  /// would false-poison it.  Enable only when every participant
  /// increments or waits at a known minimum cadence.
  std::chrono::milliseconds heartbeat_stale_after{std::chrono::milliseconds(0)};
};

/// How a handle attaches to a name.
enum class SharedOpenMode : std::uint8_t {
  kCreate,        ///< create fresh, or RECOVER a poisoned existing name
  kOpen,          ///< attach to an existing name; error if absent
  kOpenOrCreate,  ///< attach, creating if absent (the factory's mode)
};

template <typename Env = SharedRealEnv>
class SharedCounterT {
 public:
  using env_type = Env;

  /// Creates the named counter, or — the recovery path — takes over a
  /// name whose current epoch is poisoned: slots cleared, value zeroed,
  /// epoch bumped, old-epoch handles superseded.  Throws
  /// std::invalid_argument if the name exists and is live.
  static SharedCounterT Create(const std::string& name,
                               SharedCounterOptions options = {}) {
    return SharedCounterT(name, SharedOpenMode::kCreate, options);
  }
  /// Attaches to an existing name; std::invalid_argument if absent.
  static SharedCounterT Open(const std::string& name,
                             SharedCounterOptions options = {}) {
    return SharedCounterT(name, SharedOpenMode::kOpen, options);
  }
  /// Attaches, creating if absent — first-writer-wins, the mode the
  /// spec factory uses so "shared:/name" works in every process
  /// without coordinating who creates.
  static SharedCounterT OpenOrCreate(const std::string& name,
                                     SharedCounterOptions options = {}) {
    return SharedCounterT(name, SharedOpenMode::kOpenOrCreate, options);
  }

  /// Removes the NAME (not the segment: live mappings survive until
  /// the last handle unmaps).  Idempotent.
  static void Unlink(const std::string& name) { SharedSegment::unlink(name); }

  // Not movable (mutex + jthread members); the factory functions
  // return prvalues, so handles construct in place (C++17 elision).
  SharedCounterT(const SharedCounterT&) = delete;
  SharedCounterT& operator=(const SharedCounterT&) = delete;

  ~SharedCounterT() {
    // Stop OnReach watchers before the segment goes away under them.
    {
      std::lock_guard<std::mutex> lock(watchers_mu_);
      for (auto& w : watchers_) w.request_stop();
    }
    for (auto& w : watchers_) {
      if (w.joinable()) w.join();
    }
    watchers_.clear();
    // Clean detach: release the registration slot, but only our own
    // claim — if recovery already re-initialized the table (epoch
    // moved on), the CAS fails harmlessly against the cleared slot.
    if (seg_ && slot_ != kNoSlot) {
      std::uint32_t expected = Env::pid();
      header()->slots[slot_].pid.compare_exchange_strong(
          expected, 0, std::memory_order_acq_rel);
    }
  }

  // ---- the paper's two fundamental operations, across processes ----

  void Increment(counter_value_t amount = 1) {
    MC_REQUIRE(amount > 0, "Increment amount must be positive");
    SharedSegmentHeader* h = header();
    stats_.on_increment();
    check_epoch(h);
    if (h->poison_code.load(std::memory_order_acquire) != kSharedLive) {
      // Same contract as BasicCounter: increments on a poisoned
      // counter are counted drops, not errors — the producer learns
      // nothing useful from throwing here.
      stats_.on_dropped_increment();
      return;
    }
    SharedParticipantSlot& slot = h->slots[slot_];
    slot.heartbeat_ns.store(Env::now_ns(), std::memory_order_relaxed);
    // The in-flight marker is the "holding the lock" analogue: raised
    // before the publish, cleared after the wake, so a corpse found
    // with it raised died mid-protocol (diagnostic only — ANY unclean
    // death poisons, marker raised or not).
    slot.inflight.fetch_add(1, std::memory_order_acq_rel);
    Env::point(SchedulePoint::kSharedInflight);
    h->value.fetch_add(amount, std::memory_order_seq_cst);
    Env::point(SchedulePoint::kSharedPublish);
    // Wake elision, Dekker-paired with Check's waiters++ / value
    // re-check (both seq_cst): either we observe the armed waiter and
    // wake, or the waiter's re-check observes our published value.
    if (h->waiters.load(std::memory_order_seq_cst) > 0) {
      h->wait_word.fetch_add(1, std::memory_order_release);
      Env::futex_wake_all(&h->wait_word);
      stats_.on_notify();
    } else {
      stats_.on_fast_increment();
    }
    Env::point(SchedulePoint::kSharedWake);
    slot.inflight.fetch_sub(1, std::memory_order_acq_rel);
    // Sampled slow-path sweep: incrementers share the detection load
    // so a produce-only process still discovers dead peers.
    if ((local_increments_++ & (kSweepEvery - 1)) == kSweepEvery - 1) {
      sweep_for_deaths();
    }
  }

  void Check(counter_value_t level) {
    (void)wait_reached(level, /*has_deadline=*/false, {}, nullptr);
  }

  template <typename Rep, typename Period>
  bool CheckFor(counter_value_t level,
                std::chrono::duration<Rep, Period> timeout) {
    return CheckUntil(level, std::chrono::steady_clock::now() +
                                 std::chrono::duration_cast<
                                     std::chrono::steady_clock::duration>(
                                     timeout));
  }

  bool CheckUntil(counter_value_t level,
                  std::chrono::steady_clock::time_point deadline) {
    return wait_reached(level, /*has_deadline=*/true, deadline, nullptr);
  }

  /// Cancellable wait: returns false if `stop` fires first.
  bool Check(counter_value_t level, std::stop_token stop) {
    return wait_reached(level, /*has_deadline=*/false, {}, &stop);
  }

  /// Async check, served by a per-callback watcher thread parked in
  /// detector-period slices (there is no shared callback chain — a
  /// callback cannot live in the segment).  `fn` runs on the watcher
  /// thread; poison/supersession route to `on_error` when provided and
  /// are dropped otherwise.  Watchers are joined by the destructor.
  void OnReach(counter_value_t level, std::function<void()> fn,
               std::function<void(std::exception_ptr)> on_error = {}) {
    MC_REQUIRE(fn != nullptr, "OnReach requires a callback");
    std::lock_guard<std::mutex> lock(watchers_mu_);
    watchers_.emplace_back([this, level, fn = std::move(fn),
                            on_error = std::move(on_error)](
                               std::stop_token stop) {
      try {
        if (wait_reached(level, false, {}, &stop)) fn();
        // Cancelled (destructor tear-down): drop silently.
      } catch (...) {
        if (on_error) on_error(std::current_exception());
      }
    });
  }

  // ---- failure model ----

  /// Explicit poison.  The cause cannot cross the process boundary, so
  /// remote waiters see a synthesized CounterPoisonedError{kExplicit};
  /// waiters in THIS process still receive the original `cause`.
  void Poison(std::exception_ptr cause = {}) {
    SharedSegmentHeader* h = header();
    Env::point(SchedulePoint::kPoison);
    if (cause) {
      // Record the local cause BEFORE publishing the code, so a waiter
      // that observes the poison finds the cause in place; first cause
      // wins, mirroring first-poison-wins on the shared code.
      std::lock_guard<std::mutex> lock(cause_mu_);
      if (!local_cause_) local_cause_ = std::move(cause);
    }
    std::uint32_t expected = kSharedLive;
    if (h->poison_code.compare_exchange_strong(expected, kSharedPoisonExplicit,
                                               std::memory_order_acq_rel)) {
      stats_.on_poison();
      bump_and_wake(h);
    }
  }
  void Poison(std::string_view reason) {
    Poison(std::make_exception_ptr(CounterPoisonedError(std::string(reason))));
  }

  bool poisoned() const {
    return header()->poison_code.load(std::memory_order_acquire) !=
           kSharedLive;
  }

  /// In-process Reset is a local affair; a shared Reset would yank the
  /// value from under live waiters in other processes.  The supported
  /// recovery is Create() on the poisoned name (epoch bump).
  void Reset() {
    throw std::logic_error(
        "SharedCounter::Reset: re-Create the name to start a new epoch");
  }

  // ---- introspection ----

  counter_value_t debug_value() const {
    return header()->value.load(std::memory_order_acquire);
  }

  /// Wait-list shape is per-process here (remote waiters are invisible
  /// by design — their nodes live in their address spaces), so the
  /// snapshot reports the value plane only.
  CounterDebugSnapshot debug_snapshot() const {
    CounterDebugSnapshot snap;
    snap.value = debug_value();
    return snap;
  }

  CounterStatsSnapshot stats() const {
    CounterStatsSnapshot snap = stats_.snapshot();
    const SharedSegmentHeader* h = header();
    snap.participant_deaths =
        h->participant_deaths.load(std::memory_order_relaxed);
    snap.epoch = h->epoch.load(std::memory_order_relaxed);
    return snap;
  }
  void stats_reset() { stats_.reset(); }

  /// Epoch this handle joined; stats().epoch is the segment's current.
  std::uint32_t epoch() const noexcept { return epoch_; }
  const std::string& name() const noexcept { return name_; }
  std::size_t participant_slot() const noexcept { return slot_; }

  /// On-demand sweep (tests; callers that want detection now, not at
  /// the next timeout slice).  Returns true iff the epoch is poisoned
  /// after the sweep.
  bool SweepForDeaths() {
    sweep_for_deaths();
    return poisoned();
  }

 private:
  static constexpr std::size_t kNoSlot = ~std::size_t{0};
  static constexpr std::uint64_t kSweepEvery = 64;  // must stay a power of 2

  SharedCounterT(const std::string& name, SharedOpenMode mode,
                 SharedCounterOptions options)
      : name_(name), options_(options) {
    seg_ = SharedSegment::map(name, mode != SharedOpenMode::kOpen);
    if (seg_.created()) {
      // ftruncate hands back zero-filled pages; formally start the
      // object's lifetime.  This re-writes init_state with its own
      // current value (kInitializing == 0), so openers polling the
      // latch observe nothing.
      new (seg_.header()) SharedSegmentHeader{};
    }
    SharedSegmentHeader* h = header();
    if (seg_.created()) {
      h->epoch.store(1, std::memory_order_relaxed);
      h->version = SharedSegmentHeader::kVersion;
      h->magic = SharedSegmentHeader::kMagic;
      h->init_state.store(SharedSegmentHeader::kReady,
                          std::memory_order_release);
    } else {
      wait_ready(h, name);
      if (mode == SharedOpenMode::kCreate) {
        if (h->poison_code.load(std::memory_order_acquire) == kSharedLive) {
          throw std::invalid_argument(
              "shared counter '" + name +
              "' already exists and is live; Open it, or poison it first");
        }
        recover(h);
      }
    }
    epoch_ = h->epoch.load(std::memory_order_acquire);
    register_self(h, name);
  }

  SharedSegmentHeader* header() const noexcept { return seg_.header(); }

  /// Bounded wait for the creator/recoverer to publish the header.
  /// A creator that died pre-publish is itself an unclean death; after
  /// ~2s we give up rather than spin forever on a stillborn segment.
  static void wait_ready(SharedSegmentHeader* h, const std::string& name) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (h->init_state.load(std::memory_order_acquire) !=
           SharedSegmentHeader::kReady) {
      if (std::chrono::steady_clock::now() >= deadline) {
        throw std::runtime_error("shared counter '" + name +
                                 "': creator died before publishing; "
                                 "shm_unlink the name and re-Create");
      }
      std::this_thread::yield();
    }
    if (h->magic != SharedSegmentHeader::kMagic ||
        h->version != SharedSegmentHeader::kVersion) {
      throw std::runtime_error("shared counter '" + name +
                               "': segment layout mismatch (magic/version); "
                               "all participants must run the same layout");
    }
  }

  /// Takeover of a poisoned name: exactly one recoverer wins the
  /// kReady→kRecovering latch; losers wait for the winner's kReady.
  void recover(SharedSegmentHeader* h) {
    std::uint32_t expected = SharedSegmentHeader::kReady;
    if (h->init_state.compare_exchange_strong(expected,
                                              SharedSegmentHeader::kRecovering,
                                              std::memory_order_acq_rel)) {
      for (auto& slot : h->slots) {
        slot.pid.store(0, std::memory_order_relaxed);
        slot.inflight.store(0, std::memory_order_relaxed);
        slot.heartbeat_ns.store(0, std::memory_order_relaxed);
      }
      h->value.store(0, std::memory_order_relaxed);
      h->dead_pid.store(0, std::memory_order_relaxed);
      // participant_deaths deliberately survives: segment-lifetime stat.
      h->poison_code.store(kSharedLive, std::memory_order_relaxed);
      h->epoch.fetch_add(1, std::memory_order_acq_rel);
      h->init_state.store(SharedSegmentHeader::kReady,
                          std::memory_order_release);
      // Old-epoch waiters must wake NOW to observe the supersession,
      // not at their next detector slice.
      bump_and_wake(h);
    } else {
      wait_ready(h, name_);
    }
  }

  void register_self(SharedSegmentHeader* h, const std::string& name) {
    const std::uint32_t me = Env::pid();
    for (std::size_t i = 0; i < kSharedMaxParticipants; ++i) {
      std::uint32_t expected = 0;
      if (h->slots[i].pid.compare_exchange_strong(
              expected, me, std::memory_order_acq_rel)) {
        slot_ = i;
        h->slots[i].heartbeat_ns.store(Env::now_ns(),
                                       std::memory_order_relaxed);
        Env::point(SchedulePoint::kSharedRegister);
        return;
      }
    }
    throw CounterResourceError(
        "shared counter '" + name + "': all " +
        std::to_string(kSharedMaxParticipants) +
        " participant slots are claimed; detach a participant (or recover "
        "the name) before joining");
  }

  [[noreturn]] void throw_poisoned(std::uint32_t code) const {
    if (code == kSharedPoisonParticipantDied) {
      throw CounterPoisonedError(
          "shared counter '" + name_ + "': participant pid " +
              std::to_string(
                  header()->dead_pid.load(std::memory_order_relaxed)) +
              " died mid-protocol; epoch " + std::to_string(epoch_) +
              " is poisoned (re-Create to recover)",
          PoisonCause::kParticipantDied);
    }
    // Explicit poison: waiters in the poisoning process rethrow the
    // original cause; remote waiters get the synthesized error.
    std::exception_ptr cause;
    {
      std::lock_guard<std::mutex> lock(cause_mu_);
      cause = local_cause_;
    }
    throw CounterPoisonedError(
        "shared counter '" + name_ + "': poisoned (epoch " +
            std::to_string(epoch_) + ")",
        PoisonCause::kExplicit, std::move(cause));
  }

  [[noreturn]] void throw_superseded() const {
    throw CounterPoisonedError(
        "shared counter '" + name_ + "': epoch " + std::to_string(epoch_) +
            " was superseded by a re-Create (current epoch " +
            std::to_string(header()->epoch.load(std::memory_order_relaxed)) +
            "); re-Open the name",
        PoisonCause::kEpochSuperseded);
  }

  void check_epoch(const SharedSegmentHeader* h) const {
    if (h->epoch.load(std::memory_order_acquire) != epoch_) {
      throw_superseded();
    }
  }

  /// The one wait loop behind Check/CheckFor/CheckUntil/Check(stop).
  /// Returns true when the level is reached, false on deadline or
  /// cancellation; throws on poison/supersession (unless the level was
  /// already covered — see the header comment's asymmetry note).
  bool wait_reached(counter_value_t level, bool has_deadline,
                    std::chrono::steady_clock::time_point deadline,
                    const std::stop_token* stop) {
    SharedSegmentHeader* h = header();
    stats_.on_check();
    Env::point(SchedulePoint::kCheck);
    check_epoch(h);
    if (h->value.load(std::memory_order_seq_cst) >= level) {
      stats_.on_fast_check();
      return true;
    }
    {
      const std::uint32_t code =
          h->poison_code.load(std::memory_order_acquire);
      if (code != kSharedLive) throw_poisoned(code);
    }
    // One suspend/resume pair per slow-path Check, however many
    // slices it sleeps — the pairing must hold on the throw paths too.
    stats_.on_suspend();
    struct ResumeGuard {
      CounterStats& stats;
      ~ResumeGuard() { stats.on_resume(); }
    } resume_guard{stats_};
    for (;;) {
      check_epoch(h);
      if (h->value.load(std::memory_order_seq_cst) >= level) return true;
      const std::uint32_t code =
          h->poison_code.load(std::memory_order_acquire);
      if (code != kSharedLive) throw_poisoned(code);
      if (stop != nullptr && stop->stop_requested()) {
        stats_.on_cancelled_check();
        return false;
      }
      if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
        stats_.on_timed_out_check();
        return false;
      }
      // Arm, snapshot, re-check, then sleep against the snapshot —
      // the FutexWait policy's lost-wakeup-free protocol, with the
      // engine mutex replaced by seq_cst Dekker pairing (see
      // Increment): either the incrementer's waiters load sees our
      // arm and bumps the word, or our re-check sees its published
      // value.  A bump between snapshot and sleep fails FUTEX_WAIT's
      // in-kernel compare, so we never park past a published
      // increment.
      h->waiters.fetch_add(1, std::memory_order_seq_cst);
      const std::uint32_t snapshot =
          h->wait_word.load(std::memory_order_seq_cst);
      const bool ready =
          h->value.load(std::memory_order_seq_cst) >= level ||
          h->poison_code.load(std::memory_order_acquire) != kSharedLive ||
          h->epoch.load(std::memory_order_acquire) != epoch_;
      if (!ready) {
        // Sleep at most one detector period per slice: every waiter is
        // its own death detector of last resort (header comment).
        auto slice = std::chrono::steady_clock::now() + options_.detect_period;
        if (has_deadline && deadline < slice) slice = deadline;
        Env::point(SchedulePoint::kPark);
        const bool woken =
            Env::futex_wait_until(&h->wait_word, snapshot, slice);
        if (!woken) {
          // Slice expired with no wake: stamp liveness, run the sweep.
          if (slot_ != kNoSlot) {
            h->slots[slot_].heartbeat_ns.store(Env::now_ns(),
                                               std::memory_order_relaxed);
          }
          sweep_for_deaths();
        } else if (h->value.load(std::memory_order_seq_cst) < level) {
          stats_.on_spurious_wakeup();
        }
      }
      h->waiters.fetch_sub(1, std::memory_order_seq_cst);
    }
  }

  /// The death detector.  Sweeps the registration table; a claimed
  /// slot whose pid fails the liveness probe (or whose heartbeat is
  /// stale, when that backstop is enabled) is an unclean death: the
  /// CAS pid→0 makes each death count exactly once across concurrent
  /// sweepers in any process, then first-poison-wins freezes the
  /// epoch and wakes everyone everywhere.
  void sweep_for_deaths() {
    SharedSegmentHeader* h = header();
    Env::point(SchedulePoint::kSharedSweep);
    const std::uint32_t me = Env::pid();
    const std::uint64_t now = Env::now_ns();
    const std::uint64_t stale_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            options_.heartbeat_stale_after)
            .count());
    for (auto& slot : h->slots) {
      const std::uint32_t pid = slot.pid.load(std::memory_order_acquire);
      if (pid == 0 || pid == me) continue;
      bool dead = !Env::process_alive(pid);
      if (!dead && stale_ns != 0) {
        const std::uint64_t beat =
            slot.heartbeat_ns.load(std::memory_order_relaxed);
        dead = beat != 0 && now > beat && now - beat > stale_ns;
      }
      if (!dead) continue;
      std::uint32_t expected = pid;
      if (!slot.pid.compare_exchange_strong(expected, 0,
                                            std::memory_order_acq_rel)) {
        continue;  // another sweeper claimed this death
      }
      h->participant_deaths.fetch_add(1, std::memory_order_relaxed);
      std::uint32_t live = kSharedLive;
      if (h->poison_code.compare_exchange_strong(
              live, kSharedPoisonParticipantDied,
              std::memory_order_acq_rel)) {
        h->dead_pid.store(pid, std::memory_order_relaxed);
        stats_.on_poison();
        bump_and_wake(h);
      }
    }
  }

  static void bump_and_wake(SharedSegmentHeader* h) {
    h->wait_word.fetch_add(1, std::memory_order_release);
    Env::futex_wake_all(&h->wait_word);
  }

  std::string name_;
  SharedCounterOptions options_;
  SharedSegment seg_;
  std::uint32_t epoch_ = 0;
  std::size_t slot_ = kNoSlot;
  std::uint64_t local_increments_ = 0;
  /// Original cause from a local Poison(exception_ptr) — cannot cross
  /// the process boundary, so only this process's waiters rethrow it.
  /// Guarded by cause_mu_ (exception_ptr is not atomic).
  mutable std::mutex cause_mu_;
  std::exception_ptr local_cause_;
  mutable CounterStats stats_;
  std::mutex watchers_mu_;
  std::vector<std::jthread> watchers_;
};

using SharedCounter = SharedCounterT<SharedRealEnv>;

}  // namespace monotonic

#endif  // !_WIN32
