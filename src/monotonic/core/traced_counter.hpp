// traced_counter.hpp — counter wrapper emitting Tracer events.
//
// Same layering as TrackedCounter (the determinacy wrapper): the core
// counter stays hook-free; observability composes from the outside.
// Wraps any CounterLike and records increment / fast-check / suspend /
// resume events with the counter's (static) name.
#pragma once

#include "monotonic/core/counter.hpp"
#include "monotonic/core/counter_concept.hpp"
#include "monotonic/support/config.hpp"
#include "monotonic/support/trace.hpp"

namespace monotonic {

/// Tracer-instrumented counter.  `name` must have static storage
/// duration (string literal).
template <CounterLike C = Counter>
class TracedCounter {
 public:
  explicit TracedCounter(const char* name, Tracer& tracer = Tracer::global())
      : name_(name), tracer_(tracer) {}
  TracedCounter(const TracedCounter&) = delete;
  TracedCounter& operator=(const TracedCounter&) = delete;

  void Increment(counter_value_t amount = 1) {
    tracer_.record(TraceEventKind::kIncrement, name_, amount);
    impl_.Increment(amount);
  }

  void Check(counter_value_t level) {
    // Distinguish fast and slow paths by the stats delta — the wrapped
    // counter already classifies them.
    const auto before = impl_.stats().suspensions;
    impl_.Check(level);
    if (impl_.stats().suspensions != before) {
      // We were parked (approximately: another thread's suspension in
      // the same window can misattribute; good enough for a lens).
      tracer_.record(TraceEventKind::kResume, name_, level);
    } else {
      tracer_.record(TraceEventKind::kCheckFast, name_, level);
    }
  }

  C& impl() noexcept { return impl_; }

 private:
  const char* name_;
  Tracer& tracer_;
  C impl_;
};

}  // namespace monotonic
