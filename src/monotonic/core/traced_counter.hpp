// traced_counter.hpp — back-compat shim for the Traced<C> decorator.
//
// The tracer-instrumented wrapper now lives in counter_decorator.hpp
// alongside the other generic decorators; this header keeps the
// original TracedCounter spelling alive for existing includes.
#pragma once

#include "monotonic/core/counter_decorator.hpp"

namespace monotonic {

/// Pre-refactor name for Traced<C>.
template <CounterLike C = Counter>
using TracedCounter = Traced<C>;

}  // namespace monotonic
