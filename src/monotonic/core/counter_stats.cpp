#include "monotonic/core/counter_stats.hpp"

namespace monotonic {

CounterStatsSnapshot CounterStats::snapshot() const noexcept {
  CounterStatsSnapshot s;
#if MONOTONIC_ENABLE_STATS
  s.increments = increments_.load(std::memory_order_relaxed);
  s.checks = checks_.load(std::memory_order_relaxed);
  s.fast_checks = fast_checks_.load(std::memory_order_relaxed);
  s.suspensions = suspensions_.load(std::memory_order_relaxed);
  s.wakeups = wakeups_.load(std::memory_order_relaxed);
  s.notifies = notifies_.load(std::memory_order_relaxed);
  s.nodes_allocated = nodes_allocated_.load(std::memory_order_relaxed);
  s.nodes_pooled = nodes_pooled_.load(std::memory_order_relaxed);
  s.live_nodes = live_nodes_.load(std::memory_order_relaxed);
  s.max_live_nodes = max_live_nodes_.load(std::memory_order_relaxed);
  s.max_live_waiters = max_live_waiters_.load(std::memory_order_relaxed);
  s.spurious_wakeups = spurious_wakeups_.load(std::memory_order_relaxed);
  s.poisons = poisons_.load(std::memory_order_relaxed);
  s.aborted_wakeups = aborted_wakeups_.load(std::memory_order_relaxed);
  s.cancelled_checks = cancelled_checks_.load(std::memory_order_relaxed);
  s.dropped_increments = dropped_increments_.load(std::memory_order_relaxed);
  s.stall_reports = stall_reports_.load(std::memory_order_relaxed);
  s.fast_path_increments =
      fast_path_increments_.load(std::memory_order_relaxed);
  s.collapses = collapses_.load(std::memory_order_relaxed);
  s.timed_out_checks = timed_out_checks_.load(std::memory_order_relaxed);
  s.overload_rejections = overload_rejections_.load(std::memory_order_relaxed);
  s.degraded_waits = degraded_waits_.load(std::memory_order_relaxed);
  s.pool_hits = pool_hits_.load(std::memory_order_relaxed);
  s.pool_misses = pool_misses_.load(std::memory_order_relaxed);
  s.bulk_wakes = bulk_wakes_.load(std::memory_order_relaxed);
  s.index_depth = index_depth_.load(std::memory_order_relaxed);
  s.predicate_checks = predicate_checks_.load(std::memory_order_relaxed);
  s.async_completions = async_completions_.load(std::memory_order_relaxed);
#endif
  // Configuration, not counters: reported even with stats compiled out.
  s.stripe_count = stripe_count_.load(std::memory_order_relaxed);
  s.wait_shard_count = wait_shard_count_.load(std::memory_order_relaxed);
  return s;
}

void CounterStats::reset() noexcept {
#if MONOTONIC_ENABLE_STATS
  increments_.store(0, std::memory_order_relaxed);
  checks_.store(0, std::memory_order_relaxed);
  fast_checks_.store(0, std::memory_order_relaxed);
  suspensions_.store(0, std::memory_order_relaxed);
  wakeups_.store(0, std::memory_order_relaxed);
  notifies_.store(0, std::memory_order_relaxed);
  nodes_allocated_.store(0, std::memory_order_relaxed);
  nodes_pooled_.store(0, std::memory_order_relaxed);
  // live_nodes_ / live_waiters_ are levels, not totals; do not reset.
  max_live_nodes_.store(live_nodes_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  max_live_waiters_.store(live_waiters_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  spurious_wakeups_.store(0, std::memory_order_relaxed);
  poisons_.store(0, std::memory_order_relaxed);
  aborted_wakeups_.store(0, std::memory_order_relaxed);
  cancelled_checks_.store(0, std::memory_order_relaxed);
  dropped_increments_.store(0, std::memory_order_relaxed);
  stall_reports_.store(0, std::memory_order_relaxed);
  fast_path_increments_.store(0, std::memory_order_relaxed);
  collapses_.store(0, std::memory_order_relaxed);
  timed_out_checks_.store(0, std::memory_order_relaxed);
  overload_rejections_.store(0, std::memory_order_relaxed);
  degraded_waits_.store(0, std::memory_order_relaxed);
  pool_hits_.store(0, std::memory_order_relaxed);
  pool_misses_.store(0, std::memory_order_relaxed);
  bulk_wakes_.store(0, std::memory_order_relaxed);
  index_depth_.store(0, std::memory_order_relaxed);
  predicate_checks_.store(0, std::memory_order_relaxed);
  async_completions_.store(0, std::memory_order_relaxed);
  // stripe_count_ / wait_shard_count_ are configuration, not counters;
  // they survive reset.
#endif
}

TextTable counter_stats_table(
    const std::vector<std::pair<std::string, CounterStatsSnapshot>>& rows) {
  // A row is "value-sharded" when its plane has stripes, "wait-sharded"
  // when its wait plane runs the heap index (more than one shard, or a
  // recorded index depth — a 1-shard heap still indexes).  Each column
  // group appears only when at least one row needs it, and within an
  // extended table, rows a group does not apply to print "-" instead
  // of a zero that reads like a measurement.
  const auto value_sharded = [](const CounterStatsSnapshot& s) {
    return s.stripe_count > 1;
  };
  const auto wait_indexed = [](const CounterStatsSnapshot& s) {
    return s.wait_shard_count > 1 || s.index_depth > 0;
  };
  // Cross-process rows (shared_counter.hpp) carry a nonzero epoch.
  const auto cross_process = [](const CounterStatsSnapshot& s) {
    return s.epoch > 0;
  };
  bool any_sharded = false;
  bool any_indexed = false;
  bool any_shared = false;
  for (const auto& [label, s] : rows) {
    if (value_sharded(s)) any_sharded = true;
    if (wait_indexed(s)) any_indexed = true;
    if (cross_process(s)) any_shared = true;
  }
  std::vector<std::string> header = {"counter",     "increments", "checks",
                                     "fast checks", "suspensions", "wakeups",
                                     "notifies",    "spurious"};
  if (any_sharded) {
    header.insert(header.end(), {"stripes", "collapses", "fast incs"});
  }
  if (any_indexed) {
    header.insert(header.end(), {"wshards", "depth", "bulk wakes"});
  }
  if (any_shared) {
    header.insert(header.end(), {"epoch", "deaths"});
  }
  TextTable table(std::move(header));
  for (const auto& [label, s] : rows) {
    std::vector<std::string> row = {
        label,           cell(s.increments), cell(s.checks),
        cell(s.fast_checks), cell(s.suspensions), cell(s.wakeups),
        cell(s.notifies), cell(s.spurious_wakeups)};
    if (any_sharded) {
      if (value_sharded(s)) {
        row.push_back(cell(s.stripe_count));
        row.push_back(cell(s.collapses));
        row.push_back(cell(s.fast_path_increments));
      } else {
        row.insert(row.end(), {"-", "-", "-"});
      }
    }
    if (any_indexed) {
      if (wait_indexed(s)) {
        row.push_back(cell(s.wait_shard_count));
        row.push_back(cell(s.index_depth));
        row.push_back(cell(s.bulk_wakes));
      } else {
        row.insert(row.end(), {"-", "-", "-"});
      }
    }
    if (any_shared) {
      if (cross_process(s)) {
        row.push_back(cell(s.epoch));
        row.push_back(cell(s.participant_deaths));
      } else {
        row.insert(row.end(), {"-", "-"});
      }
    }
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace monotonic
