// broadcast_counter.hpp — the naive single-condition-variable counter.
//
// The obvious implementation the paper's §7 design is measured against:
// one mutex, one condition variable, notify_all on every Increment.
// Functionally identical to Counter, but every Increment wakes *every*
// waiter regardless of level, so threads waiting on far-away levels eat
// a spurious wakeup per Increment — O(total waiters) work per operation
// instead of O(released levels).  E5/E10 quantify the difference.
#pragma once

#include <condition_variable>
#include <limits>
#include <mutex>

#include "monotonic/core/counter_stats.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/support/config.hpp"

namespace monotonic {

/// Counter with a single shared suspension queue (ablation baseline).
class SingleCvCounter {
 public:
  SingleCvCounter() = default;
  SingleCvCounter(const SingleCvCounter&) = delete;
  SingleCvCounter& operator=(const SingleCvCounter&) = delete;

  void Increment(counter_value_t amount = 1) {
    {
      std::scoped_lock lock(m_);
      stats_.on_increment();
      if (amount == 0) return;
      MC_REQUIRE(
          value_ <= std::numeric_limits<counter_value_t>::max() - amount,
          "counter value overflow");
      value_ += amount;
      stats_.on_notify();
    }
    cv_.notify_all();
  }

  void Check(counter_value_t level) {
    std::unique_lock lock(m_);
    stats_.on_check();
    if (value_ >= level) {
      stats_.on_fast_check();
      return;
    }
    stats_.on_suspend();
    while (value_ < level) {
      cv_.wait(lock);
      // Any wakeup that leaves us below the level was structural waste;
      // this is precisely the cost §7's wait-list design eliminates.
      if (value_ < level) stats_.on_spurious_wakeup();
    }
    stats_.on_resume();
  }

  void Reset() {
    std::scoped_lock lock(m_);
    value_ = 0;
  }

  counter_value_t debug_value() const {
    std::scoped_lock lock(m_);
    return value_;
  }

  CounterStatsSnapshot stats() const noexcept { return stats_.snapshot(); }
  void stats_reset() noexcept { stats_.reset(); }

 private:
  mutable std::mutex m_;
  std::condition_variable cv_;
  counter_value_t value_ = 0;
  CounterStats stats_;
};

}  // namespace monotonic
