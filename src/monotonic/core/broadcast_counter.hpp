// broadcast_counter.hpp — the naive single-condition-variable counter.
//
// The obvious implementation the paper's §7 design is measured against:
// one mutex, one shared condition variable, notify_all on every
// Increment.  Functionally identical to Counter, but every Increment
// wakes *every* waiter regardless of level, so threads waiting on
// far-away levels eat a spurious wakeup per Increment — O(total
// waiters) work per operation instead of O(released levels).  E5/E10
// quantify the difference.
//
// Since the policy-based refactor this is the SingleCvWait
// instantiation of BasicCounter: the wait list is still maintained (so
// the baseline gains Figure 2 introspection, timed waits and OnReach
// for free), but releases are signalled only by the shared broadcast —
// keeping the ablation property intact inside the common engine.
// Full API documentation is on BasicCounter.
#pragma once

#include "monotonic/core/basic_counter.hpp"
#include "monotonic/core/striped_cells.hpp"
#include "monotonic/core/wait_policy.hpp"

namespace monotonic {

/// Counter with a single shared suspension queue (ablation baseline).
using SingleCvCounter = BasicCounter<SingleCvWait>;

/// The broadcast baseline over the striped value plane (spec
/// "sharded+single-cv").  Kept for ablation symmetry: increments that
/// cross the watermark take the slow pass, whose increment hooks issue
/// the shared-cv broadcast — increments below the watermark wake
/// nobody, which is exactly the point of the watermark.
using ShardedSingleCvCounter = BasicCounter<SingleCvWait, StripedPlane>;

}  // namespace monotonic
