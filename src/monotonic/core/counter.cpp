#include "monotonic/core/counter.hpp"

#include <limits>

#include "monotonic/support/assert.hpp"

namespace monotonic {

Counter::Counter(const Options& options) : options_(options) {}

Counter::~Counter() {
  std::scoped_lock lock(m_);
  MC_CHECK(waiting_ == nullptr, "Counter destroyed with suspended waiters");
  // Unreached callbacks are dropped, not run: running "reached level L"
  // callbacks for a level that was never reached would be a lie.
  while (callbacks_ != nullptr) {
    CallbackNode* node = callbacks_;
    callbacks_ = node->next;
    delete node;
  }
  drain_pool();
}

void Counter::drain_pool() {
  while (free_list_ != nullptr) {
    WaitNode* node = free_list_;
    free_list_ = node->next;
    delete node;
  }
  pool_size_ = 0;
}

Counter::WaitNode* Counter::acquire_node(counter_value_t level) {
  WaitNode* node;
  bool from_pool = false;
  if (free_list_ != nullptr) {
    node = free_list_;
    free_list_ = node->next;
    --pool_size_;
    from_pool = true;
  } else {
    node = new WaitNode();
  }
  node->level = level;
  node->waiters = 0;
  node->released = false;
  node->next = nullptr;
  stats_.on_node_allocated(from_pool);
  return node;
}

void Counter::release_node(WaitNode* node) {
  stats_.on_node_freed();
  if (options_.pool_nodes &&
      (options_.max_pool_size == 0 || pool_size_ < options_.max_pool_size)) {
    node->next = free_list_;
    free_list_ = node;
    ++pool_size_;
  } else {
    delete node;
  }
}

Counter::WaitNode** Counter::find_insert_position(counter_value_t level) {
  WaitNode** pos = &waiting_;
  while (*pos != nullptr && (*pos)->level < level) pos = &(*pos)->next;
  return pos;
}

void Counter::Increment(counter_value_t amount) {
  CallbackNode* reached = nullptr;
  {
    std::scoped_lock lock(m_);
    stats_.on_increment();
    if (amount == 0) return;
    MC_REQUIRE(value_ <= std::numeric_limits<counter_value_t>::max() - amount,
               "counter value overflow");
    value_ += amount;

    // §7: "removes all nodes with levels less than or equal to the new
    // counter value from the waiting list.  The condition variable is
    // set in each of these nodes, which wakes up all threads waiting at
    // those levels."  The list is ascending, so the released nodes are
    // exactly a prefix — Increment touches O(released levels) nodes,
    // never the whole list and never individual waiters.
    //
    // notify_all is issued under the lock: a released node may only be
    // freed by its last waiter, and waiters cannot run until we drop
    // m_, so the node is guaranteed alive here (a spuriously-woken
    // waiter observing released==true could otherwise free it
    // mid-notify).
    while (waiting_ != nullptr && waiting_->level <= value_) {
      WaitNode* node = waiting_;
      waiting_ = node->next;
      node->released = true;
      stats_.on_wakeups(node->waiters);
      stats_.on_notify();
      node->cv.notify_all();
    }

    reached = detach_reached_callbacks();
  }
  // Callbacks run outside the lock (CP.22): they may re-enter this
  // counter or any other.
  run_callback_chain(reached);
}

void Counter::OnReach(counter_value_t level, std::function<void()> fn) {
  {
    std::unique_lock lock(m_);
    if (value_ < level) {
      // Insert into the ascending callback list, joining an existing
      // level node if present (mirrors the wait list).
      CallbackNode** pos = &callbacks_;
      while (*pos != nullptr && (*pos)->level < level) pos = &(*pos)->next;
      if (*pos != nullptr && (*pos)->level == level) {
        (*pos)->callbacks.push_back(std::move(fn));
      } else {
        auto* node = new CallbackNode();
        node->level = level;
        node->callbacks.push_back(std::move(fn));
        node->next = *pos;
        *pos = node;
      }
      return;
    }
  }
  // Level already reached: run here, outside the lock.
  fn();
}

Counter::CallbackNode* Counter::detach_reached_callbacks() {
  CallbackNode* head = nullptr;
  CallbackNode** tail = &head;
  while (callbacks_ != nullptr && callbacks_->level <= value_) {
    CallbackNode* node = callbacks_;
    callbacks_ = node->next;
    node->next = nullptr;
    *tail = node;
    tail = &node->next;
  }
  return head;
}

void Counter::run_callback_chain(CallbackNode* chain) {
  while (chain != nullptr) {
    CallbackNode* node = chain;
    chain = node->next;
    for (auto& fn : node->callbacks) fn();
    delete node;
  }
}

void Counter::Check(counter_value_t level) {
  std::unique_lock lock(m_);
  stats_.on_check();
  // Fast path (§7): "Check with a level less than or equal to the
  // current counter value returns immediately."
  if (value_ >= level) {
    stats_.on_fast_check();
    return;
  }

  WaitNode** pos = find_insert_position(level);
  WaitNode* node;
  if (*pos != nullptr && (*pos)->level == level) {
    node = *pos;  // join the existing queue for this level
  } else {
    node = acquire_node(level);
    node->next = *pos;
    *pos = node;
  }
  ++node->waiters;
  stats_.on_suspend();

  // Wait on `released` rather than re-deriving value_ >= level so the
  // predicate stays correct even across a (misused) Reset.
  while (!node->released) {
    node->cv.wait(lock);
    if (!node->released) stats_.on_spurious_wakeup();
  }

  stats_.on_resume();
  // §7: "The thread that decrements the count to zero deallocates the
  // node."  Increment already unlinked it from the waiting list.
  if (--node->waiters == 0) release_node(node);
}

bool Counter::check_until(counter_value_t level,
                          std::chrono::steady_clock::time_point deadline) {
  std::unique_lock lock(m_);
  stats_.on_check();
  if (value_ >= level) {
    stats_.on_fast_check();
    return true;
  }

  WaitNode** pos = find_insert_position(level);
  WaitNode* node;
  if (*pos != nullptr && (*pos)->level == level) {
    node = *pos;
  } else {
    node = acquire_node(level);
    node->next = *pos;
    *pos = node;
  }
  ++node->waiters;
  stats_.on_suspend();

  while (!node->released) {
    if (node->cv.wait_until(lock, deadline) == std::cv_status::timeout) {
      if (node->released) break;  // released at the wire: count as success
      stats_.on_resume();
      if (--node->waiters == 0) {
        // Still linked (only Increment unlinks, and it would have set
        // released); unlink ourselves to preserve the storage bound.
        WaitNode** p = &waiting_;
        while (*p != node) p = &(*p)->next;
        *p = node->next;
        release_node(node);
      }
      return false;
    }
    if (!node->released) stats_.on_spurious_wakeup();
  }

  stats_.on_resume();
  if (--node->waiters == 0) release_node(node);
  return true;
}

void Counter::Reset() {
  std::scoped_lock lock(m_);
  MC_REQUIRE(waiting_ == nullptr,
             "Reset called while threads are suspended (§2: Reset must not "
             "run concurrently with other operations)");
  MC_REQUIRE(callbacks_ == nullptr,
             "Reset called with pending OnReach callbacks");
  value_ = 0;
}

Counter::DebugSnapshot Counter::debug_snapshot() const {
  std::scoped_lock lock(m_);
  DebugSnapshot snap;
  snap.value = value_;
  for (WaitNode* node = waiting_; node != nullptr; node = node->next) {
    snap.wait_levels.push_back(DebugWaitLevel{node->level, node->waiters});
  }
  for (CallbackNode* node = callbacks_; node != nullptr; node = node->next) {
    snap.callback_levels.push_back(node->level);
  }
  return snap;
}

}  // namespace monotonic
