#include "monotonic/core/futex_counter.hpp"

#include <climits>
#include <limits>

#include "monotonic/support/assert.hpp"

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace monotonic {

namespace {

#if defined(__linux__)
void futex_wait(std::atomic<std::uint32_t>* addr, std::uint32_t expected) {
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr),
          FUTEX_WAIT_PRIVATE, expected, nullptr, nullptr, 0);
}

void futex_wake_all(std::atomic<std::uint32_t>* addr) {
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr),
          FUTEX_WAKE_PRIVATE, INT_MAX, nullptr, nullptr, 0);
}
#else
void futex_wait(std::atomic<std::uint32_t>* addr, std::uint32_t expected) {
  addr->wait(expected, std::memory_order_acquire);
}
void futex_wake_all(std::atomic<std::uint32_t>* addr) {
  addr->notify_all();
}
#endif

}  // namespace

void FutexCounter::Increment(counter_value_t amount) {
  stats_.on_increment();
  if (amount == 0) return;
  const counter_value_t prev =
      value_.fetch_add(amount, std::memory_order_release);
  MC_REQUIRE(prev <= std::numeric_limits<counter_value_t>::max() - amount,
             "counter value overflow");
  // Publish-then-wake: bump the notification word after the value so a
  // waiter that reads the new seq also sees the new value, then wake
  // everyone sleeping on the word.
  notify_seq_.fetch_add(1, std::memory_order_release);
  stats_.on_notify();
  futex_wake_all(&notify_seq_);
}

void FutexCounter::Check(counter_value_t level) {
  stats_.on_check();
  if (value_.load(std::memory_order_acquire) >= level) {
    stats_.on_fast_check();
    return;
  }
  stats_.on_suspend();
  for (;;) {
    // Snapshot the seq *before* re-reading the value: if an Increment
    // lands between the two reads, the seq no longer matches and
    // FUTEX_WAIT returns immediately instead of missing the wakeup.
    const std::uint32_t seq = notify_seq_.load(std::memory_order_acquire);
    if (value_.load(std::memory_order_acquire) >= level) break;
    futex_wait(&notify_seq_, seq);
    if (value_.load(std::memory_order_acquire) < level) {
      stats_.on_spurious_wakeup();
    } else {
      break;
    }
  }
  stats_.on_resume();
}

void FutexCounter::Reset() { value_.store(0, std::memory_order_release); }

}  // namespace monotonic
