// wait_list.hpp — the shared wait-engine underneath every counter
// implementation.
//
// §7 describes one data structure: "an ordered linked list of
// dynamically allocated nodes representing the counter levels on which
// threads are waiting".  Historically each counter implementation
// (list, single-cv, futex, spin, hybrid) re-implemented that list — or
// skipped it, losing introspection and timed waits.  This header
// factors the machinery out once:
//
//   * WaitList<Signal>   — the per-level node index: join-or-create,
//     prefix release, timed-waiter unlink, node pooling, and the
//     structural stats (§7's O(live levels) storage bound).  The
//     `Signal` type parameter is the per-node wake primitive a waiting
//     policy plugs in (a condition variable, a futex word, a spin
//     flag); the list itself never blocks or wakes anybody.
//
//     Two interchangeable representations sit behind one API
//     (WaitListOptions::wait_plane — the WaitIndex seam):
//
//       kList (default)  §7's ordered linked list, verbatim: O(live
//                        levels) join, O(1) min-level, prefix release
//                        by popping the head.
//       kHeap            the sharded hierarchical level index
//                        (wait_index.hpp): per shard an intrusive
//                        array min-heap plus a level hash, giving
//                        O(log L) join-or-insert, O(S) min-level, and
//                        bulk release of all levels <= value as an
//                        ascending peel of shard roots.  Shards are
//                        picked by level % wait_shards.
//
//     Both keep the §7 contract bit-for-bit at the API: waiters are
//     released in ascending level order, released nodes are exactly
//     the set of levels <= value, and storage stays O(live levels).
//
//   * CallbackList       — the OnReach async-check analogue: one node
//     per level with registered callbacks, same ordering discipline
//     and the same two representations, released prefixes carried out
//     of the lock and run there (CP.22).
//
// Every member function that touches list state requires the owning
// counter's mutex to be held; the classes are lock-agnostic on purpose
// (the hybrid/futex/spin policies only take that mutex on slow paths).
#pragma once

#include <algorithm>
#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "monotonic/core/completion.hpp"
#include "monotonic/core/counter_stats.hpp"
#include "monotonic/core/engine_env.hpp"
#include "monotonic/core/wait_index.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/support/cache.hpp"
#include "monotonic/support/config.hpp"

namespace monotonic {

/// Watermark sentinel: "no level is armed".  Strictly above every legal
/// level (lock-free value planes cap levels at max >> 1, and Check
/// REQUIREs that), so the engine's `sum >= watermark` test needs no
/// special case for the empty wait list.
inline constexpr counter_value_t kNoArmedLevel =
    std::numeric_limits<counter_value_t>::max();

/// One ordered (level, waiters) pair per live wait node — the shape
/// Figure 2 draws, shared by every implementation's debug_snapshot().
struct DebugWaitLevel {
  counter_value_t level;
  std::size_t waiters;
};

/// Structural snapshot for tests and benches (Figure 2 reproduction).
/// Application code must not branch on this — see the no-probe rule.
struct CounterDebugSnapshot {
  counter_value_t value;
  std::vector<DebugWaitLevel> wait_levels;       // ascending by level
  std::vector<counter_value_t> callback_levels;  // ascending
};

/// Which representation the wait plane (and the OnReach callback
/// index) uses — the WaitIndex seam.  Selected at construction, spec
/// token `waitplane=list|heap[:S]`.  (Declared ahead of
/// CounterStallReport, which names the plane it reports on.)
enum class WaitPlaneKind : std::uint8_t {
  /// The paper's §7 ordered linked list.  O(live levels) to join a new
  /// level; unbeatable constant factors below a few hundred levels.
  kList,
  /// The sharded hierarchical level index (wait_index.hpp): O(log L)
  /// join, bulk wake as an ascending peel.  The million-waiter plane.
  kHeap,
};

constexpr const char* to_string(WaitPlaneKind kind) noexcept {
  switch (kind) {
    case WaitPlaneKind::kList:
      return "list";
    case WaitPlaneKind::kHeap:
      return "heap";
  }
  return "?";
}

/// Diagnostic snapshot handed to the stall watchdog: which level the
/// stuck waiter wants, how long it has been parked, the full wait-list
/// shape at the moment of the report, and which wait plane (kind +
/// shard count) the stuck waiter is parked on — a heap-plane stall
/// and a list-plane stall point at different suspects, and the report
/// was previously ambiguous between them.
struct CounterStallReport {
  counter_value_t value;                    ///< current counter value
  counter_value_t level;                    ///< level the waiter wants
  std::chrono::milliseconds waited;         ///< how long it has waited
  std::vector<DebugWaitLevel> wait_levels;  ///< ascending, like Figure 2
  WaitPlaneKind wait_plane = WaitPlaneKind::kList;  ///< plane representation
  std::size_t wait_shards = 1;              ///< plane shards (1 = unsharded)
};

/// What the engine does with a waiter that bounded admission
/// (WaitListOptions::max_waiters / max_levels) turns away.  Uniform
/// across all five policies and both value planes — admission is
/// enforced by the engine at every park site, under the engine mutex,
/// before the wait list is touched.
enum class OverloadPolicy : std::uint8_t {
  /// Reject: the Check throws CounterOverloadedError.  Capacity frees
  /// as parked waiters are released, so retrying is legitimate.
  kThrow,
  /// Degrade: the waiter is denied a wait node and falls back to a
  /// bounded-backoff spin/poll loop on the value itself — no list
  /// storage, no signal, but still poison-, deadline- and
  /// cancellation-aware.  Counted in the degraded_waits stat.
  kSpinFallback,
  /// Backpressure: the waiter parks at a capacity gate the engine
  /// already owns (a condvar under the engine mutex) until a slot
  /// frees.  Because gate waiters hold and re-take the engine mutex,
  /// incrementer slow paths queue behind the overload instead of
  /// racing ahead of it — the producers feel the backpressure.
  kBlockIncrementers,
};

/// Heap-plane shard cap, mirroring the striped value plane's [1, 64]
/// stripe clamp: every cross-shard operation is an O(S) scan, and the
/// bulk-wake merge keeps one cursor per shard on the stack.
inline constexpr std::size_t kMaxWaitShards = 64;

namespace detail {
/// Bulk-wake crossover: a release that peels more than this many
/// levels stops popping minima one by one (O(log L) scattered sifts
/// each) and switches to sort-merge-discard over the shard arrays —
/// see LevelShard's bulk-drain block (wait_index.hpp).
inline constexpr std::size_t kBulkWakeThreshold = 64;

/// kSpinFallback relock-poll pacing (degraded_wait_locked in
/// basic_counter.hpp).  The first kDegradedSpinProbes probes ride the
/// environment spinner so a waiter denied admission during a short
/// burst still wakes in microseconds; the count stays BELOW the
/// spinner's yield threshold (SpinBackoff pauses for its first ten
/// iterations) because a 10k-waiter storm each burning a yield phase
/// floods the run queue and starves everything else — E12 measured
/// the storm's thread-spawn loop alone at ~35 s with yields in the
/// probe budget.  Past the probes, each poll sleeps on the engine's
/// capacity gate with the nap doubling from kDegradedNapFloor to
/// kDegradedNapCap: N degraded waiters then demand O(N / cap) mutex
/// acquisitions per second instead of O(N / 100µs), which is the
/// difference between the storm degrading and it monopolizing every
/// core re-locking the engine mutex (E12 measured 11.8 ms/op before
/// the cap, ~170x the kThrow policy's cost).
///
/// The cap can sit this high because naps are only the FALLBACK wake
/// path: napping pollers register a level floor with the engine and
/// the increment/poison slow paths broadcast the gate the moment the
/// value crosses it (notify_degraded_locked in basic_counter.hpp), so
/// a 250ms cap costs microseconds of exit latency, not 250ms.  At
/// 20ms, E12's 10k-waiter storm still demanded ~500k relock wakeups
/// per second during its spawn ramp — enough to saturate a core
/// before the first increment arrived.
inline constexpr std::uint32_t kDegradedSpinProbes = 4;
inline constexpr std::chrono::microseconds kDegradedNapFloor{100};
inline constexpr std::chrono::milliseconds kDegradedNapCap{250};
}  // namespace detail

/// Node-pooling and failure-diagnostic knobs, common to every policy.
struct WaitListOptions {
  /// Reuse freed wait nodes through an internal free list instead of
  /// returning them to the allocator.  On by default; the E5 bench
  /// ablates it.
  bool pool_nodes = true;
  /// Maximum nodes retained in the pool (0 = unbounded).  Clamped up
  /// to `preallocated_nodes` so preallocated capacity is never
  /// returned to the allocator by recycle().
  std::size_t max_pool_size = 64;
  /// Wait nodes constructed up front into the free list, so Check on a
  /// hot level never allocates in steady state (allocation-free once
  /// the working set of distinct levels fits the pool).  Zero by
  /// default — preallocation is opt-in, and it raises the pool's
  /// retention floor (recycle keeps max(max_pool_size,
  /// preallocated_nodes) nodes), which would perturb code tuned around
  /// max_pool_size alone.  The spec factory exposes this as
  /// "pooled[:N]+".
  std::size_t preallocated_nodes = 0;
  /// Bounded admission: maximum threads parked in the wait list at
  /// once (0 = unlimited).  Excess waiters are handled per
  /// `overload_policy`.
  std::size_t max_waiters = 0;
  /// Bounded admission: maximum distinct live wait levels (linked
  /// nodes) at once (0 = unlimited).  Joining an existing level never
  /// counts against this; only creating a new node does.
  std::size_t max_levels = 0;
  /// What to do with a waiter the bounds above turn away.
  OverloadPolicy overload_policy = OverloadPolicy::kThrow;
  /// Stall watchdog: when > 0, an untimed Check parked longer than
  /// this emits a CounterStallReport through `on_stall` (and again
  /// every further interval), so a lost Increment surfaces as a
  /// diagnosable report instead of a silent hang.  Timed checks have
  /// their own deadlines and are exempt.
  std::chrono::milliseconds stall_report_after{0};
  /// Stall sink.  Called outside the counter lock; may log, alloc, or
  /// touch other counters.  Empty = a stderr one-liner.
  std::function<void(const CounterStallReport&)> on_stall;
  /// Striped value planes only: number of per-stripe cells.  0 = pick
  /// automatically from hardware_concurrency (rounded up to a power of
  /// two, clamped to [1, 64]).  Ignored by unsharded counters.
  std::size_t stripes = 0;
  /// Wait-plane representation (the WaitIndex seam): the §7 ordered
  /// list, or the sharded level index.  Spec token
  /// "waitplane=list|heap[:S]".
  WaitPlaneKind wait_plane = WaitPlaneKind::kList;
  /// Heap wait plane only: number of level shards (level % S picks the
  /// shard).  0 = 1 shard.  Ignored by the list plane.
  std::size_t wait_shards = 0;
  /// Async completion plane (completion.hpp): where detached OnReach /
  /// predicate callback chains run.  Null (the default) delivers
  /// inline on the incrementing thread — bit-for-bit the pre-executor
  /// semantics.  A ThreadPoolExecutor moves slow callbacks off the
  /// incrementer entirely; poison delivery rides the same queue.
  /// Shared, not owned: one executor can drain many counters.  Spec
  /// token "executor=inline|pool[:N]".
  std::shared_ptr<CompletionExecutor> completion_executor;
};

/// The §7 wait plane.  `Signal` is the per-node wake primitive
/// supplied by the waiting policy; the list requires only that it is
/// default-constructible and has a `reset()` hook called on reuse.
/// `Env` (engine_env.hpp) supplies the schedule-point hook: the
/// structural transitions — a waiter joining a node, a prefix being
/// released, the poison sweep, the index linking or peeling a level —
/// are decision points the simulation harness interleaves at;
/// RealEngineEnv compiles them away.
///
/// The representation behind the API is chosen at construction by
/// WaitListOptions::wait_plane (see WaitPlaneKind).  The default kList
/// path executes the exact pre-seam instruction and schedule-point
/// sequence, so committed simulation seeds replay bit-identically.
template <typename Signal, typename Env = RealEngineEnv>
class WaitList {
 public:
  // One node per distinct level with waiters (§7 / Figure 2):
  // {level, count, signal, link}.  Cache-line aligned: a node's signal
  // is hammered by its own waiters (futex word, spin flag, condvar
  // state) while neighbouring nodes' waiters hammer theirs — without
  // the alignment, pool-recycled nodes end up packed shoulder to
  // shoulder and every wake false-shares with the next level over.
  //
  // `next` links the kList order (and the pool free list in both
  // modes); `heap_pos` is the kHeap intrusive back-link.  Policies
  // never touch either — they see level/waiters/released/aborted/
  // signal only, which is what makes the representation swappable
  // underneath all five of them.
  struct alignas(kCacheLineSize) Node {
    counter_value_t level = 0;
    std::size_t waiters = 0;
    bool released = false;  // set when the node's waiters may resume
    bool aborted = false;   // wake cause: true = poisoned, not reached
    Signal signal;
    Node* next = nullptr;
    std::size_t heap_pos = 0;  // kHeap: index into the shard heap
  };

  WaitList(const WaitListOptions& options, CounterStats& stats)
      : options_(options),
        stats_(stats),
        kind_(options.wait_plane),
        shards_(kind_ == WaitPlaneKind::kHeap
                    ? std::clamp<std::size_t>(options.wait_shards, 1,
                                              kMaxWaitShards)
                    : 0) {
    stats_.set_wait_shard_count(shards_.empty() ? 1 : shards_.size());
    // Preallocation failures surface here, at construction, where the
    // caller expects allocation — never later from a hot Check.  The
    // pool-disabled ablation (pool_nodes = false) preallocates nothing:
    // its point is that every acquire pays the allocator.
    if (!options_.pool_nodes) return;
    for (std::size_t i = 0; i < options_.preallocated_nodes; ++i) {
      Node* node = new Node();
      node->next = free_list_;
      free_list_ = node;
      ++pool_size_;
    }
  }

  /// Precondition: no live nodes (the owning counter checks and reports
  /// the misuse; reaching this dtor with waiters would be UB anyway).
  ~WaitList() { drain_pool(); }

  WaitList(const WaitList&) = delete;
  WaitList& operator=(const WaitList&) = delete;

  bool empty() const noexcept { return live_level_count_ == 0; }

  /// Which representation this plane runs (WaitIndex seam).
  WaitPlaneKind kind() const noexcept { return kind_; }
  /// Resolved shard count: 1 for the list plane.
  std::size_t wait_shard_count() const noexcept {
    return shards_.empty() ? 1 : shards_.size();
  }

  /// Lowest level with a parked waiter, or kNoArmedLevel when none —
  /// O(1) off the list head, O(S) across the shard heap roots.  Feeds
  /// the striped value plane's watermark: the value returned here is
  /// published seq_cst by the plane's rearm, so the Dekker argument
  /// (striped_cells.hpp) is representation-independent — only WHERE
  /// the minimum is read changes, not how it is published.
  counter_value_t min_level() const noexcept {
    if (kind_ == WaitPlaneKind::kList) {
      return head_ != nullptr ? head_->level : kNoArmedLevel;
    }
    counter_value_t lowest = kNoArmedLevel;
    for (const auto& shard : shards_) {
      if (!shard.empty() && shard.min_level() < lowest) {
        lowest = shard.min_level();
      }
    }
    return lowest;
  }

  /// Joins the queue for `level`, creating and linking a node if this
  /// is the first waiter at that level.  Registers the caller
  /// (++waiters) so the node cannot be freed underneath it.
  ///
  /// Strong exception guarantee: the operations that can throw — the
  /// node allocation, and on the heap plane the index link (each
  /// preceded by Env::alloc_point, so injected faults cover every
  /// site) — run BEFORE any observable mutation, or unwind it — on
  /// throw the list, waiter counts and admission stats are exactly as
  /// before the call.  The engine relies on this to translate the
  /// failure into CounterResourceError with the counter still usable.
  Node* acquire(counter_value_t level) {
    Env::point(SchedulePoint::kPark);
    Node* node;
    if (kind_ == WaitPlaneKind::kList) {
      Node** pos = find_insert_position(level);
      if (*pos != nullptr && (*pos)->level == level) {
        node = *pos;  // join the existing queue for this level
      } else {
        node = allocate_node(level);  // may throw; nothing mutated yet
        node->next = *pos;
        *pos = node;
        ++live_level_count_;
      }
    } else {
      auto& shard = shard_for(level);
      node = shard.find(level);  // O(1) expected join lookup
      if (node == nullptr) {
        node = allocate_node(level);  // may throw; nothing mutated yet
        Env::point(SchedulePoint::kIndexLink);
        try {
          shard.link(node, [] { Env::alloc_point(); });
        } catch (...) {
          recycle(node);  // unwound to the pre-call state
          throw;
        }
        ++live_level_count_;
        stats_.on_index_depth(shard.depth());
      }
    }
    ++node->waiters;
    ++waiter_count_;
    return node;
  }

  /// Bounded-admission probe (engine mutex held): would admitting one
  /// more waiter at `level` exceed max_waiters, or require a new node
  /// beyond max_levels?  Joining an existing level never violates the
  /// level bound, so the level check walks the (ascending, bounded by
  /// max_levels) list — or asks the shard hash — only when the bound
  /// is live.
  bool admission_would_exceed(counter_value_t level) const {
    if (options_.max_waiters != 0 && waiter_count_ >= options_.max_waiters) {
      return true;
    }
    if (options_.max_levels != 0 &&
        live_level_count_ >= options_.max_levels && !has_level(level)) {
      return true;
    }
    return false;
  }

  /// True when either admission bound is configured — whether the
  /// engine needs to run admission control (and wake its capacity
  /// gate) at all.
  bool bounded() const noexcept {
    return options_.max_waiters != 0 || options_.max_levels != 0;
  }

  /// Registered waiters (threads) currently in the list.
  std::size_t waiter_count() const noexcept { return waiter_count_; }
  /// Linked (live) level nodes currently in the list.
  std::size_t live_level_count() const noexcept { return live_level_count_; }

  /// Deregisters a waiter.  The last waiter to leave frees the node
  /// (§7: "The thread that decrements the count to zero deallocates
  /// the node").  A released node was already unlinked by
  /// release_prefix; a timed-out waiter's node is still linked, so the
  /// last leaver unlinks it here — preserving the O(live levels)
  /// storage bound under timeouts.
  void leave(Node* node) {
    MC_ASSERT(node->waiters > 0, "leave() without matching acquire()");
    MC_ASSERT(waiter_count_ > 0, "waiter accounting underflow");
    --waiter_count_;
    if (--node->waiters > 0) return;
    if (!node->released) unlink(node);
    recycle(node);
  }

  /// §7: "removes all nodes with levels less than or equal to the new
  /// counter value from the waiting list."  Ascending in both modes:
  /// the list pops its head, the index peels the global-minimum shard
  /// root — so this touches O(released levels) nodes (times O(S) for
  /// the root scan), never the whole structure and never individual
  /// waiters.  `on_release(Node&)` is the policy's wake hook, called
  /// once per node with the owning lock still held (a released node
  /// may only be freed by its last waiter, and waiters cannot run
  /// until the lock drops, so the node is guaranteed alive inside the
  /// hook).
  template <typename OnRelease>
  void release_prefix(counter_value_t value, OnRelease&& on_release) {
    std::size_t released_levels = 0;
    if (kind_ == WaitPlaneKind::kList) {
      while (head_ != nullptr && head_->level <= value) {
        Env::point(SchedulePoint::kWake);
        Node* node = head_;
        head_ = node->next;
        node->released = true;
        MC_ASSERT(live_level_count_ > 0, "level accounting underflow");
        --live_level_count_;
        stats_.on_wakeups(node->waiters);
        on_release(*node);
        ++released_levels;
      }
    } else {
      // Small wakes peel minima; past the crossover the rest of the
      // prefix drains via sort-merge (see drain_heap_sorted).
      while (released_levels < detail::kBulkWakeThreshold) {
        auto* shard = detail::min_level_shard(shards_);
        if (shard == nullptr || shard->min_level() > value) break;
        Env::point(SchedulePoint::kIndexPeel);
        Env::point(SchedulePoint::kWake);
        Node* node = shard->pop_min();
        node->released = true;
        MC_ASSERT(live_level_count_ > 0, "level accounting underflow");
        --live_level_count_;
        stats_.on_wakeups(node->waiters);
        on_release(*node);
        ++released_levels;
      }
      released_levels += drain_heap_sorted(value, [&](Node* node) {
        node->released = true;
        MC_ASSERT(live_level_count_ > 0, "level accounting underflow");
        --live_level_count_;
        stats_.on_wakeups(node->waiters);
        on_release(*node);
      });
    }
    if (released_levels > 1) stats_.on_bulk_wake();
  }

  /// Poison path: unlinks and wakes EVERY node regardless of level,
  /// marking each `aborted` so resuming waiters can tell "reached"
  /// from "the Increment you were waiting on is never coming".  Same
  /// locking discipline, ascending order and `on_release` wake hook as
  /// release_prefix.
  template <typename OnRelease>
  void abort_all(OnRelease&& on_release) {
    std::size_t released_levels = 0;
    if (kind_ == WaitPlaneKind::kList) {
      while (head_ != nullptr) {
        Env::point(SchedulePoint::kWake);
        Node* node = head_;
        head_ = node->next;
        node->released = true;
        node->aborted = true;
        MC_ASSERT(live_level_count_ > 0, "level accounting underflow");
        --live_level_count_;
        stats_.on_aborted_wakeups(node->waiters);
        on_release(*node);
        ++released_levels;
      }
    } else {
      // The poison sweep releases everything: straight to the sorted
      // bulk drain (kNoArmedLevel is above every legal level).
      released_levels += drain_heap_sorted(kNoArmedLevel, [&](Node* node) {
        node->released = true;
        node->aborted = true;
        MC_ASSERT(live_level_count_ > 0, "level accounting underflow");
        --live_level_count_;
        stats_.on_aborted_wakeups(node->waiters);
        on_release(*node);
      });
    }
    if (released_levels > 1) stats_.on_bulk_wake();
  }

  /// The bulk half of the heap plane's prefix release: sorts each
  /// shard's entry array ascending in place, k-way merges the S sorted
  /// prefixes so `per_node` still sees global level order, then
  /// discards each prefix in one pass (wait_index.hpp documents why
  /// this beats repeated pop_min at scale).  No-op when nothing is
  /// left at or below `value`.  Allocation-free: the merge keeps one
  /// cursor per shard on the stack (shards are clamped to
  /// kMaxWaitShards).
  template <typename PerNode>
  std::size_t drain_heap_sorted(counter_value_t value, PerNode&& per_node) {
    {
      auto* shard = detail::min_level_shard(shards_);
      if (shard == nullptr || shard->min_level() > value) return 0;
    }
    const std::size_t nshards = shards_.size();
    std::array<std::size_t, kMaxWaitShards> cursor{};
    std::array<std::size_t, kMaxWaitShards> end{};
    for (std::size_t i = 0; i < nshards; ++i) {
      shards_[i].sort_ascending();
      end[i] = shards_[i].split(value);
    }
    std::size_t released = 0;
    for (;;) {
      std::size_t best = nshards;
      counter_value_t best_level = 0;
      for (std::size_t i = 0; i < nshards; ++i) {
        if (cursor[i] == end[i]) continue;
        const counter_value_t level = shards_[i].level_at(cursor[i]);
        if (best == nshards || level < best_level) {
          best = i;
          best_level = level;
        }
      }
      if (best == nshards) break;
      Env::point(SchedulePoint::kIndexPeel);
      Env::point(SchedulePoint::kWake);
      // The nodes themselves are scattered; pull the one we'll touch a
      // few iterations from now while this one's miss is in flight.
      if (cursor[best] + 8 < end[best]) {
        __builtin_prefetch(shards_[best].node_at(cursor[best] + 8), 1);
      }
      per_node(shards_[best].node_at(cursor[best]));
      ++cursor[best];
      ++released;
    }
    for (std::size_t i = 0; i < nshards; ++i) {
      shards_[i].discard_prefix(end[i]);
    }
    return released;
  }

  /// Appends one (level, waiters) entry per live node, ascending.
  void snapshot_into(std::vector<DebugWaitLevel>& out) const {
    if (kind_ == WaitPlaneKind::kList) {
      for (Node* node = head_; node != nullptr; node = node->next) {
        out.push_back(DebugWaitLevel{node->level, node->waiters});
      }
      return;
    }
    const std::size_t first = out.size();
    for (const auto& shard : shards_) {
      shard.for_each([&](Node* node) {
        out.push_back(DebugWaitLevel{node->level, node->waiters});
      });
    }
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end(),
              [](const DebugWaitLevel& a, const DebugWaitLevel& b) {
                return a.level < b.level;
              });
  }

 private:
  detail::LevelShard<Node>& shard_for(counter_value_t level) {
    return shards_[static_cast<std::size_t>(level) % shards_.size()];
  }
  const detail::LevelShard<Node>& shard_for(counter_value_t level) const {
    return shards_[static_cast<std::size_t>(level) % shards_.size()];
  }

  Node** find_insert_position(counter_value_t level) {
    Node** pos = &head_;
    while (*pos != nullptr && (*pos)->level < level) pos = &(*pos)->next;
    return pos;
  }

  bool has_level(counter_value_t level) const {
    if (kind_ == WaitPlaneKind::kHeap) {
      return shard_for(level).find(level) != nullptr;
    }
    for (Node* node = head_; node != nullptr && node->level <= level;
         node = node->next) {
      if (node->level == level) return true;
    }
    return false;
  }

  Node* allocate_node(counter_value_t level) {
    Node* node;
    bool from_pool = false;
    if (free_list_ != nullptr) {
      node = free_list_;
      free_list_ = node->next;
      --pool_size_;
      from_pool = true;
    } else {
      Env::alloc_point();  // fault hook: may throw std::bad_alloc
      node = new Node();
    }
    node->level = level;
    node->waiters = 0;
    node->released = false;
    node->aborted = false;
    node->signal.reset();
    node->next = nullptr;
    node->heap_pos = 0;
    stats_.on_node_allocated(from_pool);
    return node;
  }

  void unlink(Node* node) {
    if (kind_ == WaitPlaneKind::kList) {
      Node** pos = &head_;
      while (*pos != node) pos = &(*pos)->next;
      *pos = node->next;
    } else {
      shard_for(node->level).erase(node);
    }
    MC_ASSERT(live_level_count_ > 0, "level accounting underflow");
    --live_level_count_;
  }

  void recycle(Node* node) {
    stats_.on_node_freed();
    // The retention cap never drops below the preallocated count, so
    // capacity paid for up front is never handed back to the heap.
    const std::size_t cap =
        std::max(options_.max_pool_size, options_.preallocated_nodes);
    if (options_.pool_nodes &&
        (options_.max_pool_size == 0 || pool_size_ < cap)) {
      node->next = free_list_;
      free_list_ = node;
      ++pool_size_;
    } else {
      delete node;
    }
  }

  void drain_pool() {
    while (free_list_ != nullptr) {
      Node* node = free_list_;
      free_list_ = node->next;
      delete node;
    }
    pool_size_ = 0;
  }

  const WaitListOptions options_;
  CounterStats& stats_;
  const WaitPlaneKind kind_;   // which representation (WaitIndex seam)
  Node* head_ = nullptr;       // kList: ascending by level; levels > value
  std::vector<detail::LevelShard<Node>> shards_;  // kHeap: the level index
  Node* free_list_ = nullptr;  // node pool (options_.pool_nodes)
  std::size_t pool_size_ = 0;
  std::size_t waiter_count_ = 0;      // registered waiters (admission)
  std::size_t live_level_count_ = 0;  // linked nodes (admission)
};

/// One node per level with registered OnReach callbacks; same ordering
/// discipline and the same two representations as WaitList (the
/// engine passes its wait-plane configuration down, so a heap-plane
/// counter indexes a million OnReach levels at the same O(log L) its
/// parked waiters get), but released nodes are detached under the lock
/// and executed outside it (CP.22: callbacks may re-enter this or any
/// other counter).  Templated over the engine environment for the same
/// reason WaitList is: its allocations (node + entry vector + index
/// link) run under the engine mutex, so they are fault-injection
/// points (Env::alloc_point) the strong-guarantee audit must cover.
template <typename Env = RealEngineEnv>
class CallbackListT {
 public:
  /// One registered OnReach: the success callback plus an optional
  /// error callback that receives the poison cause when the counter is
  /// poisoned below the entry's level.
  struct Entry {
    std::function<void()> fn;
    std::function<void(std::exception_ptr)> on_error;
  };

  struct Node {
    counter_value_t level = 0;
    std::vector<Entry> callbacks;
    Node* next = nullptr;
    std::size_t heap_pos = 0;  // kHeap: index into the shard heap
  };

  /// Default: the §7 ordered list (the pre-seam shape).  The engine
  /// passes its WaitListOptions wait-plane selection so both indices
  /// share one representation.
  explicit CallbackListT(WaitPlaneKind kind = WaitPlaneKind::kList,
                         std::size_t shards = 1)
      : kind_(kind),
        shards_(kind == WaitPlaneKind::kHeap
                    ? std::clamp<std::size_t>(shards, 1, kMaxWaitShards)
                    : 0) {}

  /// Unreached callbacks are dropped, not run: running "reached level
  /// L" callbacks for a level that was never reached would be a lie.
  /// (Poisoning, by contrast, detaches them and delivers the error —
  /// see detach_all / run_chain_error.)
  ~CallbackListT() {
    while (head_ != nullptr) {
      Node* node = head_;
      head_ = node->next;
      delete node;
    }
    for (auto& shard : shards_) {
      std::vector<Node*> doomed;
      doomed.reserve(shard.size());
      shard.for_each([&](Node* node) { doomed.push_back(node); });
      for (Node* node : doomed) delete node;
    }
  }

  CallbackListT(const CallbackListT&) = delete;
  CallbackListT& operator=(const CallbackListT&) = delete;

  bool empty() const noexcept {
    if (kind_ == WaitPlaneKind::kList) return head_ == nullptr;
    for (const auto& shard : shards_) {
      if (!shard.empty()) return false;
    }
    return true;
  }

  /// Lowest level with a registered callback, or kNoArmedLevel when
  /// none (mirrors WaitList::min_level for the watermark computation).
  counter_value_t min_level() const noexcept {
    if (kind_ == WaitPlaneKind::kList) {
      return head_ != nullptr ? head_->level : kNoArmedLevel;
    }
    counter_value_t lowest = kNoArmedLevel;
    for (const auto& shard : shards_) {
      if (!shard.empty() && shard.min_level() < lowest) {
        lowest = shard.min_level();
      }
    }
    return lowest;
  }

  /// Inserts into the level index, joining an existing level node if
  /// present (mirrors the wait list).
  ///
  /// Strong exception guarantee: every allocation point — growing an
  /// existing node's entry vector, creating a new node, or linking it
  /// into the heap index — runs before the node is (or stays) visible
  /// in a partially-updated state.  push_back itself is strong, a
  /// freshly-allocated node is only linked after its entry is in
  /// place, and a failed index link deletes the unlinked node — so a
  /// bad_alloc (real or injected at Env::alloc_point) leaves the list
  /// exactly as it was.
  void insert(counter_value_t level, std::function<void()> fn,
              std::function<void(std::exception_ptr)> on_error = {}) {
    if (kind_ == WaitPlaneKind::kList) {
      Node** pos = &head_;
      while (*pos != nullptr && (*pos)->level < level) pos = &(*pos)->next;
      if (*pos != nullptr && (*pos)->level == level) {
        Env::alloc_point();  // fault hook: may throw std::bad_alloc
        (*pos)->callbacks.push_back(Entry{std::move(fn), std::move(on_error)});
      } else {
        Env::alloc_point();  // fault hook: may throw std::bad_alloc
        auto* node = new Node();
        node->level = level;
        node->callbacks.push_back(Entry{std::move(fn), std::move(on_error)});
        node->next = *pos;
        *pos = node;
      }
      return;
    }
    auto& shard = shard_for(level);
    Node* node = shard.find(level);
    if (node != nullptr) {
      Env::alloc_point();  // fault hook: may throw std::bad_alloc
      node->callbacks.push_back(Entry{std::move(fn), std::move(on_error)});
      return;
    }
    Env::alloc_point();  // fault hook: may throw std::bad_alloc
    node = new Node();
    try {
      node->level = level;
      node->callbacks.push_back(Entry{std::move(fn), std::move(on_error)});
      shard.link(node, [] { Env::alloc_point(); });
    } catch (...) {
      delete node;  // never linked; index unwound to pre-call state
      throw;
    }
  }

  /// Detaches the nodes with level <= value and returns them as an
  /// ascending chain; the caller runs the chain after dropping the
  /// lock.
  Node* detach_reached(counter_value_t value) {
    Node* head = nullptr;
    Node** tail = &head;
    if (kind_ == WaitPlaneKind::kList) {
      while (head_ != nullptr && head_->level <= value) {
        Node* node = head_;
        head_ = node->next;
        node->next = nullptr;
        *tail = node;
        tail = &node->next;
      }
      return head;
    }
    std::size_t detached = 0;
    while (detached < detail::kBulkWakeThreshold) {
      auto* shard = detail::min_level_shard(shards_);
      if (shard == nullptr || shard->min_level() > value) break;
      Node* node = shard->pop_min();
      node->next = nullptr;
      *tail = node;
      tail = &node->next;
      ++detached;
    }
    // Big wakes drain the rest via sort-merge, exactly like the wait
    // list's drain_heap_sorted — the chain stays globally ascending,
    // which run_chain's "across levels, in level order" contract
    // requires.
    drain_sorted_into(value, tail);
    return head;
  }

  /// Poison path: detaches every remaining node (all have level >
  /// value by invariant, so none was reached), ascending.  The caller
  /// delivers the chain to run_chain_error after dropping the lock.
  Node* detach_all() {
    if (kind_ == WaitPlaneKind::kList) {
      Node* head = head_;
      head_ = nullptr;
      return head;
    }
    Node* head = nullptr;
    Node** tail = &head;
    drain_sorted_into(kNoArmedLevel, tail);
    return head;
  }

  /// Runs and frees a detached chain.  Must be called with no counter
  /// lock held.  Callbacks for one level run in registration order;
  /// across levels, in level order.
  static void run_chain(Node* chain) {
    while (chain != nullptr) {
      Node* node = chain;
      chain = node->next;
      for (auto& entry : node->callbacks) entry.fn();
      delete node;
    }
  }

  /// Frees a detached chain of never-reached callbacks, delivering
  /// `cause` to each entry's error callback (entries without one are
  /// dropped).  Must be called with no counter lock held.
  static void run_chain_error(Node* chain, const std::exception_ptr& cause) {
    while (chain != nullptr) {
      Node* node = chain;
      chain = node->next;
      for (auto& entry : node->callbacks) {
        if (entry.on_error) entry.on_error(cause);
      }
      delete node;
    }
  }

  void snapshot_into(std::vector<counter_value_t>& out) const {
    if (kind_ == WaitPlaneKind::kList) {
      for (Node* node = head_; node != nullptr; node = node->next) {
        out.push_back(node->level);
      }
      return;
    }
    const std::size_t first = out.size();
    for (const auto& shard : shards_) {
      shard.for_each([&](Node* node) { out.push_back(node->level); });
    }
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end());
  }

 private:
  detail::LevelShard<Node>& shard_for(counter_value_t level) {
    return shards_[static_cast<std::size_t>(level) % shards_.size()];
  }

  /// Bulk half of detach_reached/detach_all: sort each shard's entry
  /// array, k-way merge the sorted prefixes onto the chain at `tail`
  /// in global level order, discard the prefixes.  `tail` must point
  /// at the chain's terminating next-slot; it is advanced past every
  /// appended node.  No-op when nothing is at or below `value`.
  void drain_sorted_into(counter_value_t value, Node**& tail) {
    {
      auto* shard = detail::min_level_shard(shards_);
      if (shard == nullptr || shard->min_level() > value) return;
    }
    const std::size_t nshards = shards_.size();
    std::array<std::size_t, kMaxWaitShards> cursor{};
    std::array<std::size_t, kMaxWaitShards> end{};
    for (std::size_t i = 0; i < nshards; ++i) {
      shards_[i].sort_ascending();
      end[i] = shards_[i].split(value);
    }
    for (;;) {
      std::size_t best = nshards;
      counter_value_t best_level = 0;
      for (std::size_t i = 0; i < nshards; ++i) {
        if (cursor[i] == end[i]) continue;
        const counter_value_t level = shards_[i].level_at(cursor[i]);
        if (best == nshards || level < best_level) {
          best = i;
          best_level = level;
        }
      }
      if (best == nshards) break;
      Node* node = shards_[best].node_at(cursor[best]);
      // Same prefetch trade as drain_heap_sorted: hide the next-node
      // miss behind this one's chain append.
      if (cursor[best] + 8 < end[best]) {
        __builtin_prefetch(shards_[best].node_at(cursor[best] + 8), 1);
      }
      node->next = nullptr;
      *tail = node;
      tail = &node->next;
      ++cursor[best];
    }
    for (std::size_t i = 0; i < nshards; ++i) {
      shards_[i].discard_prefix(end[i]);
    }
  }

  const WaitPlaneKind kind_;
  Node* head_ = nullptr;  // kList: ascending by level; levels > value
  std::vector<detail::LevelShard<Node>> shards_;  // kHeap: the level index
};

/// Production alias — the pre-seam type, with the fault hook inlined
/// away (RealEngineEnv::alloc_point is an empty function).
using CallbackList = CallbackListT<>;

}  // namespace monotonic
