// wait_list.hpp — the shared wait-engine underneath every counter
// implementation.
//
// §7 describes one data structure: "an ordered linked list of
// dynamically allocated nodes representing the counter levels on which
// threads are waiting".  Historically each counter implementation
// (list, single-cv, futex, spin, hybrid) re-implemented that list — or
// skipped it, losing introspection and timed waits.  This header
// factors the machinery out once:
//
//   * WaitList<Signal>   — the ordered per-level node list: join-or-
//     create, prefix release, timed-waiter unlink, node pooling, and
//     the structural stats (§7's O(live levels) storage bound).  The
//     `Signal` type parameter is the per-node wake primitive a waiting
//     policy plugs in (a condition variable, a futex word, a spin
//     flag); the list itself never blocks or wakes anybody.
//
//   * CallbackList       — the OnReach async-check analogue: one node
//     per level with registered callbacks, same ordering discipline,
//     released prefixes carried out of the lock and run there (CP.22).
//
// Every member function that touches list state requires the owning
// counter's mutex to be held; the classes are lock-agnostic on purpose
// (the hybrid/futex/spin policies only take that mutex on slow paths).
#pragma once

#include <chrono>
#include <cstddef>
#include <exception>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "monotonic/core/counter_stats.hpp"
#include "monotonic/core/engine_env.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/support/config.hpp"

namespace monotonic {

/// Watermark sentinel: "no level is armed".  Strictly above every legal
/// level (lock-free value planes cap levels at max >> 1, and Check
/// REQUIREs that), so the engine's `sum >= watermark` test needs no
/// special case for the empty wait list.
inline constexpr counter_value_t kNoArmedLevel =
    std::numeric_limits<counter_value_t>::max();

/// One ordered (level, waiters) pair per live wait node — the shape
/// Figure 2 draws, shared by every implementation's debug_snapshot().
struct DebugWaitLevel {
  counter_value_t level;
  std::size_t waiters;
};

/// Structural snapshot for tests and benches (Figure 2 reproduction).
/// Application code must not branch on this — see the no-probe rule.
struct CounterDebugSnapshot {
  counter_value_t value;
  std::vector<DebugWaitLevel> wait_levels;       // ascending by level
  std::vector<counter_value_t> callback_levels;  // ascending
};

/// Diagnostic snapshot handed to the stall watchdog: which level the
/// stuck waiter wants, how long it has been parked, and the full
/// wait-list shape at the moment of the report.
struct CounterStallReport {
  counter_value_t value;                    ///< current counter value
  counter_value_t level;                    ///< level the waiter wants
  std::chrono::milliseconds waited;         ///< how long it has waited
  std::vector<DebugWaitLevel> wait_levels;  ///< ascending, like Figure 2
};

/// Node-pooling and failure-diagnostic knobs, common to every policy.
struct WaitListOptions {
  /// Reuse freed wait nodes through an internal free list instead of
  /// returning them to the allocator.  On by default; the E5 bench
  /// ablates it.
  bool pool_nodes = true;
  /// Maximum nodes retained in the pool (0 = unbounded).
  std::size_t max_pool_size = 64;
  /// Stall watchdog: when > 0, an untimed Check parked longer than
  /// this emits a CounterStallReport through `on_stall` (and again
  /// every further interval), so a lost Increment surfaces as a
  /// diagnosable report instead of a silent hang.  Timed checks have
  /// their own deadlines and are exempt.
  std::chrono::milliseconds stall_report_after{0};
  /// Stall sink.  Called outside the counter lock; may log, alloc, or
  /// touch other counters.  Empty = a stderr one-liner.
  std::function<void(const CounterStallReport&)> on_stall;
  /// Striped value planes only: number of per-stripe cells.  0 = pick
  /// automatically from hardware_concurrency (rounded up to a power of
  /// two, clamped to [1, 64]).  Ignored by unsharded counters.
  std::size_t stripes = 0;
};

/// The §7 ordered wait list.  `Signal` is the per-node wake primitive
/// supplied by the waiting policy; the list requires only that it is
/// default-constructible and has a `reset()` hook called on reuse.
/// `Env` (engine_env.hpp) supplies the schedule-point hook: the
/// structural transitions — a waiter joining a node, a prefix being
/// released, the poison sweep — are decision points the simulation
/// harness interleaves at; RealEngineEnv compiles them away.
template <typename Signal, typename Env = RealEngineEnv>
class WaitList {
 public:
  // One node per distinct level with waiters (§7 / Figure 2):
  // {level, count, signal, link}.
  struct Node {
    counter_value_t level = 0;
    std::size_t waiters = 0;
    bool released = false;  // set when the node's waiters may resume
    bool aborted = false;   // wake cause: true = poisoned, not reached
    Signal signal;
    Node* next = nullptr;
  };

  WaitList(const WaitListOptions& options, CounterStats& stats)
      : options_(options), stats_(stats) {}

  /// Precondition: no live nodes (the owning counter checks and reports
  /// the misuse; reaching this dtor with waiters would be UB anyway).
  ~WaitList() { drain_pool(); }

  WaitList(const WaitList&) = delete;
  WaitList& operator=(const WaitList&) = delete;

  bool empty() const noexcept { return head_ == nullptr; }

  /// Lowest level with a parked waiter, or kNoArmedLevel when none —
  /// the list is ascending, so this is O(1).  Feeds the striped value
  /// plane's watermark.
  counter_value_t min_level() const noexcept {
    return head_ != nullptr ? head_->level : kNoArmedLevel;
  }

  /// Joins the queue for `level`, creating and splicing in a node if
  /// this is the first waiter at that level.  Registers the caller
  /// (++waiters) so the node cannot be freed underneath it.
  Node* acquire(counter_value_t level) {
    Env::point(SchedulePoint::kPark);
    Node** pos = find_insert_position(level);
    Node* node;
    if (*pos != nullptr && (*pos)->level == level) {
      node = *pos;  // join the existing queue for this level
    } else {
      node = allocate_node(level);
      node->next = *pos;
      *pos = node;
    }
    ++node->waiters;
    return node;
  }

  /// Deregisters a waiter.  The last waiter to leave frees the node
  /// (§7: "The thread that decrements the count to zero deallocates
  /// the node").  A released node was already unlinked by
  /// release_prefix; a timed-out waiter's node is still linked, so the
  /// last leaver unlinks it here — preserving the O(live levels)
  /// storage bound under timeouts.
  void leave(Node* node) {
    MC_ASSERT(node->waiters > 0, "leave() without matching acquire()");
    if (--node->waiters > 0) return;
    if (!node->released) unlink(node);
    recycle(node);
  }

  /// §7: "removes all nodes with levels less than or equal to the new
  /// counter value from the waiting list."  The list is ascending, so
  /// the released nodes are exactly a prefix — this touches O(released
  /// levels) nodes, never the whole list and never individual waiters.
  /// `on_release(Node&)` is the policy's wake hook, called once per
  /// node with the owning lock still held (a released node may only be
  /// freed by its last waiter, and waiters cannot run until the lock
  /// drops, so the node is guaranteed alive inside the hook).
  template <typename OnRelease>
  void release_prefix(counter_value_t value, OnRelease&& on_release) {
    while (head_ != nullptr && head_->level <= value) {
      Env::point(SchedulePoint::kWake);
      Node* node = head_;
      head_ = node->next;
      node->released = true;
      stats_.on_wakeups(node->waiters);
      on_release(*node);
    }
  }

  /// Poison path: unlinks and wakes EVERY node regardless of level,
  /// marking each `aborted` so resuming waiters can tell "reached"
  /// from "the Increment you were waiting on is never coming".  Same
  /// locking discipline and `on_release` wake hook as release_prefix.
  template <typename OnRelease>
  void abort_all(OnRelease&& on_release) {
    while (head_ != nullptr) {
      Env::point(SchedulePoint::kWake);
      Node* node = head_;
      head_ = node->next;
      node->released = true;
      node->aborted = true;
      stats_.on_aborted_wakeups(node->waiters);
      on_release(*node);
    }
  }

  /// Appends one (level, waiters) entry per live node, ascending.
  void snapshot_into(std::vector<DebugWaitLevel>& out) const {
    for (Node* node = head_; node != nullptr; node = node->next) {
      out.push_back(DebugWaitLevel{node->level, node->waiters});
    }
  }

 private:
  Node** find_insert_position(counter_value_t level) {
    Node** pos = &head_;
    while (*pos != nullptr && (*pos)->level < level) pos = &(*pos)->next;
    return pos;
  }

  Node* allocate_node(counter_value_t level) {
    Node* node;
    bool from_pool = false;
    if (free_list_ != nullptr) {
      node = free_list_;
      free_list_ = node->next;
      --pool_size_;
      from_pool = true;
    } else {
      node = new Node();
    }
    node->level = level;
    node->waiters = 0;
    node->released = false;
    node->aborted = false;
    node->signal.reset();
    node->next = nullptr;
    stats_.on_node_allocated(from_pool);
    return node;
  }

  void unlink(Node* node) {
    Node** pos = &head_;
    while (*pos != node) pos = &(*pos)->next;
    *pos = node->next;
  }

  void recycle(Node* node) {
    stats_.on_node_freed();
    if (options_.pool_nodes &&
        (options_.max_pool_size == 0 || pool_size_ < options_.max_pool_size)) {
      node->next = free_list_;
      free_list_ = node;
      ++pool_size_;
    } else {
      delete node;
    }
  }

  void drain_pool() {
    while (free_list_ != nullptr) {
      Node* node = free_list_;
      free_list_ = node->next;
      delete node;
    }
    pool_size_ = 0;
  }

  const WaitListOptions options_;
  CounterStats& stats_;
  Node* head_ = nullptr;       // ascending by level; levels > value
  Node* free_list_ = nullptr;  // node pool (options_.pool_nodes)
  std::size_t pool_size_ = 0;
};

/// One node per level with registered OnReach callbacks; same ordering
/// discipline as WaitList, but released nodes are detached under the
/// lock and executed outside it (CP.22: callbacks may re-enter this or
/// any other counter).
class CallbackList {
 public:
  /// One registered OnReach: the success callback plus an optional
  /// error callback that receives the poison cause when the counter is
  /// poisoned below the entry's level.
  struct Entry {
    std::function<void()> fn;
    std::function<void(std::exception_ptr)> on_error;
  };

  struct Node {
    counter_value_t level = 0;
    std::vector<Entry> callbacks;
    Node* next = nullptr;
  };

  CallbackList() = default;

  /// Unreached callbacks are dropped, not run: running "reached level
  /// L" callbacks for a level that was never reached would be a lie.
  /// (Poisoning, by contrast, detaches them and delivers the error —
  /// see detach_all / run_chain_error.)
  ~CallbackList() {
    while (head_ != nullptr) {
      Node* node = head_;
      head_ = node->next;
      delete node;
    }
  }

  CallbackList(const CallbackList&) = delete;
  CallbackList& operator=(const CallbackList&) = delete;

  bool empty() const noexcept { return head_ == nullptr; }

  /// Lowest level with a registered callback, or kNoArmedLevel when
  /// none (mirrors WaitList::min_level for the watermark computation).
  counter_value_t min_level() const noexcept {
    return head_ != nullptr ? head_->level : kNoArmedLevel;
  }

  /// Inserts into the ascending callback list, joining an existing
  /// level node if present (mirrors the wait list).
  void insert(counter_value_t level, std::function<void()> fn,
              std::function<void(std::exception_ptr)> on_error = {}) {
    Node** pos = &head_;
    while (*pos != nullptr && (*pos)->level < level) pos = &(*pos)->next;
    if (*pos != nullptr && (*pos)->level == level) {
      (*pos)->callbacks.push_back(Entry{std::move(fn), std::move(on_error)});
    } else {
      auto* node = new Node();
      node->level = level;
      node->callbacks.push_back(Entry{std::move(fn), std::move(on_error)});
      node->next = *pos;
      *pos = node;
    }
  }

  /// Detaches the prefix of nodes with level <= value and returns it;
  /// the caller runs the chain after dropping the lock.
  Node* detach_reached(counter_value_t value) {
    Node* head = nullptr;
    Node** tail = &head;
    while (head_ != nullptr && head_->level <= value) {
      Node* node = head_;
      head_ = node->next;
      node->next = nullptr;
      *tail = node;
      tail = &node->next;
    }
    return head;
  }

  /// Poison path: detaches every remaining node (all have level >
  /// value by invariant, so none was reached).  The caller delivers
  /// the chain to run_chain_error after dropping the lock.
  Node* detach_all() {
    Node* head = head_;
    head_ = nullptr;
    return head;
  }

  /// Runs and frees a detached chain.  Must be called with no counter
  /// lock held.  Callbacks for one level run in registration order;
  /// across levels, in level order.
  static void run_chain(Node* chain) {
    while (chain != nullptr) {
      Node* node = chain;
      chain = node->next;
      for (auto& entry : node->callbacks) entry.fn();
      delete node;
    }
  }

  /// Frees a detached chain of never-reached callbacks, delivering
  /// `cause` to each entry's error callback (entries without one are
  /// dropped).  Must be called with no counter lock held.
  static void run_chain_error(Node* chain, const std::exception_ptr& cause) {
    while (chain != nullptr) {
      Node* node = chain;
      chain = node->next;
      for (auto& entry : node->callbacks) {
        if (entry.on_error) entry.on_error(cause);
      }
      delete node;
    }
  }

  void snapshot_into(std::vector<counter_value_t>& out) const {
    for (Node* node = head_; node != nullptr; node = node->next) {
      out.push_back(node->level);
    }
  }

 private:
  Node* head_ = nullptr;  // ascending by level; levels > value
};

}  // namespace monotonic
