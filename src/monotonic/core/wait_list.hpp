// wait_list.hpp — the shared wait-engine underneath every counter
// implementation.
//
// §7 describes one data structure: "an ordered linked list of
// dynamically allocated nodes representing the counter levels on which
// threads are waiting".  Historically each counter implementation
// (list, single-cv, futex, spin, hybrid) re-implemented that list — or
// skipped it, losing introspection and timed waits.  This header
// factors the machinery out once:
//
//   * WaitList<Signal>   — the ordered per-level node list: join-or-
//     create, prefix release, timed-waiter unlink, node pooling, and
//     the structural stats (§7's O(live levels) storage bound).  The
//     `Signal` type parameter is the per-node wake primitive a waiting
//     policy plugs in (a condition variable, a futex word, a spin
//     flag); the list itself never blocks or wakes anybody.
//
//   * CallbackList       — the OnReach async-check analogue: one node
//     per level with registered callbacks, same ordering discipline,
//     released prefixes carried out of the lock and run there (CP.22).
//
// Every member function that touches list state requires the owning
// counter's mutex to be held; the classes are lock-agnostic on purpose
// (the hybrid/futex/spin policies only take that mutex on slow paths).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <exception>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "monotonic/core/counter_stats.hpp"
#include "monotonic/core/engine_env.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/support/cache.hpp"
#include "monotonic/support/config.hpp"

namespace monotonic {

/// Watermark sentinel: "no level is armed".  Strictly above every legal
/// level (lock-free value planes cap levels at max >> 1, and Check
/// REQUIREs that), so the engine's `sum >= watermark` test needs no
/// special case for the empty wait list.
inline constexpr counter_value_t kNoArmedLevel =
    std::numeric_limits<counter_value_t>::max();

/// One ordered (level, waiters) pair per live wait node — the shape
/// Figure 2 draws, shared by every implementation's debug_snapshot().
struct DebugWaitLevel {
  counter_value_t level;
  std::size_t waiters;
};

/// Structural snapshot for tests and benches (Figure 2 reproduction).
/// Application code must not branch on this — see the no-probe rule.
struct CounterDebugSnapshot {
  counter_value_t value;
  std::vector<DebugWaitLevel> wait_levels;       // ascending by level
  std::vector<counter_value_t> callback_levels;  // ascending
};

/// Diagnostic snapshot handed to the stall watchdog: which level the
/// stuck waiter wants, how long it has been parked, and the full
/// wait-list shape at the moment of the report.
struct CounterStallReport {
  counter_value_t value;                    ///< current counter value
  counter_value_t level;                    ///< level the waiter wants
  std::chrono::milliseconds waited;         ///< how long it has waited
  std::vector<DebugWaitLevel> wait_levels;  ///< ascending, like Figure 2
};

/// What the engine does with a waiter that bounded admission
/// (WaitListOptions::max_waiters / max_levels) turns away.  Uniform
/// across all five policies and both value planes — admission is
/// enforced by the engine at every park site, under the engine mutex,
/// before the wait list is touched.
enum class OverloadPolicy : std::uint8_t {
  /// Reject: the Check throws CounterOverloadedError.  Capacity frees
  /// as parked waiters are released, so retrying is legitimate.
  kThrow,
  /// Degrade: the waiter is denied a wait node and falls back to a
  /// bounded-backoff spin/poll loop on the value itself — no list
  /// storage, no signal, but still poison-, deadline- and
  /// cancellation-aware.  Counted in the degraded_waits stat.
  kSpinFallback,
  /// Backpressure: the waiter parks at a capacity gate the engine
  /// already owns (a condvar under the engine mutex) until a slot
  /// frees.  Because gate waiters hold and re-take the engine mutex,
  /// incrementer slow paths queue behind the overload instead of
  /// racing ahead of it — the producers feel the backpressure.
  kBlockIncrementers,
};

/// Node-pooling and failure-diagnostic knobs, common to every policy.
struct WaitListOptions {
  /// Reuse freed wait nodes through an internal free list instead of
  /// returning them to the allocator.  On by default; the E5 bench
  /// ablates it.
  bool pool_nodes = true;
  /// Maximum nodes retained in the pool (0 = unbounded).  Clamped up
  /// to `preallocated_nodes` so preallocated capacity is never
  /// returned to the allocator by recycle().
  std::size_t max_pool_size = 64;
  /// Wait nodes constructed up front into the free list, so Check on a
  /// hot level never allocates in steady state (allocation-free once
  /// the working set of distinct levels fits the pool).  Zero by
  /// default — preallocation is opt-in, and it raises the pool's
  /// retention floor (recycle keeps max(max_pool_size,
  /// preallocated_nodes) nodes), which would perturb code tuned around
  /// max_pool_size alone.  The spec factory exposes this as
  /// "pooled[:N]+".
  std::size_t preallocated_nodes = 0;
  /// Bounded admission: maximum threads parked in the wait list at
  /// once (0 = unlimited).  Excess waiters are handled per
  /// `overload_policy`.
  std::size_t max_waiters = 0;
  /// Bounded admission: maximum distinct live wait levels (linked
  /// nodes) at once (0 = unlimited).  Joining an existing level never
  /// counts against this; only creating a new node does.
  std::size_t max_levels = 0;
  /// What to do with a waiter the bounds above turn away.
  OverloadPolicy overload_policy = OverloadPolicy::kThrow;
  /// Stall watchdog: when > 0, an untimed Check parked longer than
  /// this emits a CounterStallReport through `on_stall` (and again
  /// every further interval), so a lost Increment surfaces as a
  /// diagnosable report instead of a silent hang.  Timed checks have
  /// their own deadlines and are exempt.
  std::chrono::milliseconds stall_report_after{0};
  /// Stall sink.  Called outside the counter lock; may log, alloc, or
  /// touch other counters.  Empty = a stderr one-liner.
  std::function<void(const CounterStallReport&)> on_stall;
  /// Striped value planes only: number of per-stripe cells.  0 = pick
  /// automatically from hardware_concurrency (rounded up to a power of
  /// two, clamped to [1, 64]).  Ignored by unsharded counters.
  std::size_t stripes = 0;
};

/// The §7 ordered wait list.  `Signal` is the per-node wake primitive
/// supplied by the waiting policy; the list requires only that it is
/// default-constructible and has a `reset()` hook called on reuse.
/// `Env` (engine_env.hpp) supplies the schedule-point hook: the
/// structural transitions — a waiter joining a node, a prefix being
/// released, the poison sweep — are decision points the simulation
/// harness interleaves at; RealEngineEnv compiles them away.
template <typename Signal, typename Env = RealEngineEnv>
class WaitList {
 public:
  // One node per distinct level with waiters (§7 / Figure 2):
  // {level, count, signal, link}.  Cache-line aligned: a node's signal
  // is hammered by its own waiters (futex word, spin flag, condvar
  // state) while neighbouring nodes' waiters hammer theirs — without
  // the alignment, pool-recycled nodes end up packed shoulder to
  // shoulder and every wake false-shares with the next level over.
  struct alignas(kCacheLineSize) Node {
    counter_value_t level = 0;
    std::size_t waiters = 0;
    bool released = false;  // set when the node's waiters may resume
    bool aborted = false;   // wake cause: true = poisoned, not reached
    Signal signal;
    Node* next = nullptr;
  };

  WaitList(const WaitListOptions& options, CounterStats& stats)
      : options_(options), stats_(stats) {
    // Preallocation failures surface here, at construction, where the
    // caller expects allocation — never later from a hot Check.  The
    // pool-disabled ablation (pool_nodes = false) preallocates nothing:
    // its point is that every acquire pays the allocator.
    if (!options_.pool_nodes) return;
    for (std::size_t i = 0; i < options_.preallocated_nodes; ++i) {
      Node* node = new Node();
      node->next = free_list_;
      free_list_ = node;
      ++pool_size_;
    }
  }

  /// Precondition: no live nodes (the owning counter checks and reports
  /// the misuse; reaching this dtor with waiters would be UB anyway).
  ~WaitList() { drain_pool(); }

  WaitList(const WaitList&) = delete;
  WaitList& operator=(const WaitList&) = delete;

  bool empty() const noexcept { return head_ == nullptr; }

  /// Lowest level with a parked waiter, or kNoArmedLevel when none —
  /// the list is ascending, so this is O(1).  Feeds the striped value
  /// plane's watermark.
  counter_value_t min_level() const noexcept {
    return head_ != nullptr ? head_->level : kNoArmedLevel;
  }

  /// Joins the queue for `level`, creating and splicing in a node if
  /// this is the first waiter at that level.  Registers the caller
  /// (++waiters) so the node cannot be freed underneath it.
  ///
  /// Strong exception guarantee: the only operation that can throw is
  /// the node allocation (std::bad_alloc, or an injected fault at
  /// Env::alloc_point), and it runs BEFORE any list or counter
  /// mutation — on throw the list, waiter counts and stats are exactly
  /// as before the call.  The engine relies on this to translate the
  /// failure into CounterResourceError with the counter still usable.
  Node* acquire(counter_value_t level) {
    Env::point(SchedulePoint::kPark);
    Node** pos = find_insert_position(level);
    Node* node;
    if (*pos != nullptr && (*pos)->level == level) {
      node = *pos;  // join the existing queue for this level
    } else {
      node = allocate_node(level);  // may throw; nothing mutated yet
      node->next = *pos;
      *pos = node;
      ++live_level_count_;
    }
    ++node->waiters;
    ++waiter_count_;
    return node;
  }

  /// Bounded-admission probe (engine mutex held): would admitting one
  /// more waiter at `level` exceed max_waiters, or require a new node
  /// beyond max_levels?  Joining an existing level never violates the
  /// level bound, so the level check walks the (ascending, bounded by
  /// max_levels) list only when the bound is live.
  bool admission_would_exceed(counter_value_t level) const {
    if (options_.max_waiters != 0 && waiter_count_ >= options_.max_waiters) {
      return true;
    }
    if (options_.max_levels != 0 &&
        live_level_count_ >= options_.max_levels && !has_level(level)) {
      return true;
    }
    return false;
  }

  /// True when either admission bound is configured — whether the
  /// engine needs to run admission control (and wake its capacity
  /// gate) at all.
  bool bounded() const noexcept {
    return options_.max_waiters != 0 || options_.max_levels != 0;
  }

  /// Registered waiters (threads) currently in the list.
  std::size_t waiter_count() const noexcept { return waiter_count_; }
  /// Linked (live) level nodes currently in the list.
  std::size_t live_level_count() const noexcept { return live_level_count_; }

  /// Deregisters a waiter.  The last waiter to leave frees the node
  /// (§7: "The thread that decrements the count to zero deallocates
  /// the node").  A released node was already unlinked by
  /// release_prefix; a timed-out waiter's node is still linked, so the
  /// last leaver unlinks it here — preserving the O(live levels)
  /// storage bound under timeouts.
  void leave(Node* node) {
    MC_ASSERT(node->waiters > 0, "leave() without matching acquire()");
    MC_ASSERT(waiter_count_ > 0, "waiter accounting underflow");
    --waiter_count_;
    if (--node->waiters > 0) return;
    if (!node->released) unlink(node);
    recycle(node);
  }

  /// §7: "removes all nodes with levels less than or equal to the new
  /// counter value from the waiting list."  The list is ascending, so
  /// the released nodes are exactly a prefix — this touches O(released
  /// levels) nodes, never the whole list and never individual waiters.
  /// `on_release(Node&)` is the policy's wake hook, called once per
  /// node with the owning lock still held (a released node may only be
  /// freed by its last waiter, and waiters cannot run until the lock
  /// drops, so the node is guaranteed alive inside the hook).
  template <typename OnRelease>
  void release_prefix(counter_value_t value, OnRelease&& on_release) {
    while (head_ != nullptr && head_->level <= value) {
      Env::point(SchedulePoint::kWake);
      Node* node = head_;
      head_ = node->next;
      node->released = true;
      MC_ASSERT(live_level_count_ > 0, "level accounting underflow");
      --live_level_count_;
      stats_.on_wakeups(node->waiters);
      on_release(*node);
    }
  }

  /// Poison path: unlinks and wakes EVERY node regardless of level,
  /// marking each `aborted` so resuming waiters can tell "reached"
  /// from "the Increment you were waiting on is never coming".  Same
  /// locking discipline and `on_release` wake hook as release_prefix.
  template <typename OnRelease>
  void abort_all(OnRelease&& on_release) {
    while (head_ != nullptr) {
      Env::point(SchedulePoint::kWake);
      Node* node = head_;
      head_ = node->next;
      node->released = true;
      node->aborted = true;
      MC_ASSERT(live_level_count_ > 0, "level accounting underflow");
      --live_level_count_;
      stats_.on_aborted_wakeups(node->waiters);
      on_release(*node);
    }
  }

  /// Appends one (level, waiters) entry per live node, ascending.
  void snapshot_into(std::vector<DebugWaitLevel>& out) const {
    for (Node* node = head_; node != nullptr; node = node->next) {
      out.push_back(DebugWaitLevel{node->level, node->waiters});
    }
  }

 private:
  Node** find_insert_position(counter_value_t level) {
    Node** pos = &head_;
    while (*pos != nullptr && (*pos)->level < level) pos = &(*pos)->next;
    return pos;
  }

  bool has_level(counter_value_t level) const {
    for (Node* node = head_; node != nullptr && node->level <= level;
         node = node->next) {
      if (node->level == level) return true;
    }
    return false;
  }

  Node* allocate_node(counter_value_t level) {
    Node* node;
    bool from_pool = false;
    if (free_list_ != nullptr) {
      node = free_list_;
      free_list_ = node->next;
      --pool_size_;
      from_pool = true;
    } else {
      Env::alloc_point();  // fault hook: may throw std::bad_alloc
      node = new Node();
    }
    node->level = level;
    node->waiters = 0;
    node->released = false;
    node->aborted = false;
    node->signal.reset();
    node->next = nullptr;
    stats_.on_node_allocated(from_pool);
    return node;
  }

  void unlink(Node* node) {
    Node** pos = &head_;
    while (*pos != node) pos = &(*pos)->next;
    *pos = node->next;
    MC_ASSERT(live_level_count_ > 0, "level accounting underflow");
    --live_level_count_;
  }

  void recycle(Node* node) {
    stats_.on_node_freed();
    // The retention cap never drops below the preallocated count, so
    // capacity paid for up front is never handed back to the heap.
    const std::size_t cap =
        std::max(options_.max_pool_size, options_.preallocated_nodes);
    if (options_.pool_nodes &&
        (options_.max_pool_size == 0 || pool_size_ < cap)) {
      node->next = free_list_;
      free_list_ = node;
      ++pool_size_;
    } else {
      delete node;
    }
  }

  void drain_pool() {
    while (free_list_ != nullptr) {
      Node* node = free_list_;
      free_list_ = node->next;
      delete node;
    }
    pool_size_ = 0;
  }

  const WaitListOptions options_;
  CounterStats& stats_;
  Node* head_ = nullptr;       // ascending by level; levels > value
  Node* free_list_ = nullptr;  // node pool (options_.pool_nodes)
  std::size_t pool_size_ = 0;
  std::size_t waiter_count_ = 0;      // registered waiters (admission)
  std::size_t live_level_count_ = 0;  // linked nodes (admission)
};

/// One node per level with registered OnReach callbacks; same ordering
/// discipline as WaitList, but released nodes are detached under the
/// lock and executed outside it (CP.22: callbacks may re-enter this or
/// any other counter).  Templated over the engine environment for the
/// same reason WaitList is: its allocations (node + entry vector) run
/// under the engine mutex, so they are fault-injection points
/// (Env::alloc_point) the strong-guarantee audit must cover.
template <typename Env = RealEngineEnv>
class CallbackListT {
 public:
  /// One registered OnReach: the success callback plus an optional
  /// error callback that receives the poison cause when the counter is
  /// poisoned below the entry's level.
  struct Entry {
    std::function<void()> fn;
    std::function<void(std::exception_ptr)> on_error;
  };

  struct Node {
    counter_value_t level = 0;
    std::vector<Entry> callbacks;
    Node* next = nullptr;
  };

  CallbackListT() = default;

  /// Unreached callbacks are dropped, not run: running "reached level
  /// L" callbacks for a level that was never reached would be a lie.
  /// (Poisoning, by contrast, detaches them and delivers the error —
  /// see detach_all / run_chain_error.)
  ~CallbackListT() {
    while (head_ != nullptr) {
      Node* node = head_;
      head_ = node->next;
      delete node;
    }
  }

  CallbackListT(const CallbackListT&) = delete;
  CallbackListT& operator=(const CallbackListT&) = delete;

  bool empty() const noexcept { return head_ == nullptr; }

  /// Lowest level with a registered callback, or kNoArmedLevel when
  /// none (mirrors WaitList::min_level for the watermark computation).
  counter_value_t min_level() const noexcept {
    return head_ != nullptr ? head_->level : kNoArmedLevel;
  }

  /// Inserts into the ascending callback list, joining an existing
  /// level node if present (mirrors the wait list).
  ///
  /// Strong exception guarantee: both allocation points — growing an
  /// existing node's entry vector, or creating a new node — run before
  /// the node is (or stays) visible in a partially-updated state.
  /// push_back itself is strong, and a freshly-allocated node is only
  /// spliced after its entry is in place, so a bad_alloc (real or
  /// injected at Env::alloc_point) leaves the list exactly as it was.
  void insert(counter_value_t level, std::function<void()> fn,
              std::function<void(std::exception_ptr)> on_error = {}) {
    Node** pos = &head_;
    while (*pos != nullptr && (*pos)->level < level) pos = &(*pos)->next;
    if (*pos != nullptr && (*pos)->level == level) {
      Env::alloc_point();  // fault hook: may throw std::bad_alloc
      (*pos)->callbacks.push_back(Entry{std::move(fn), std::move(on_error)});
    } else {
      Env::alloc_point();  // fault hook: may throw std::bad_alloc
      auto* node = new Node();
      node->level = level;
      node->callbacks.push_back(Entry{std::move(fn), std::move(on_error)});
      node->next = *pos;
      *pos = node;
    }
  }

  /// Detaches the prefix of nodes with level <= value and returns it;
  /// the caller runs the chain after dropping the lock.
  Node* detach_reached(counter_value_t value) {
    Node* head = nullptr;
    Node** tail = &head;
    while (head_ != nullptr && head_->level <= value) {
      Node* node = head_;
      head_ = node->next;
      node->next = nullptr;
      *tail = node;
      tail = &node->next;
    }
    return head;
  }

  /// Poison path: detaches every remaining node (all have level >
  /// value by invariant, so none was reached).  The caller delivers
  /// the chain to run_chain_error after dropping the lock.
  Node* detach_all() {
    Node* head = head_;
    head_ = nullptr;
    return head;
  }

  /// Runs and frees a detached chain.  Must be called with no counter
  /// lock held.  Callbacks for one level run in registration order;
  /// across levels, in level order.
  static void run_chain(Node* chain) {
    while (chain != nullptr) {
      Node* node = chain;
      chain = node->next;
      for (auto& entry : node->callbacks) entry.fn();
      delete node;
    }
  }

  /// Frees a detached chain of never-reached callbacks, delivering
  /// `cause` to each entry's error callback (entries without one are
  /// dropped).  Must be called with no counter lock held.
  static void run_chain_error(Node* chain, const std::exception_ptr& cause) {
    while (chain != nullptr) {
      Node* node = chain;
      chain = node->next;
      for (auto& entry : node->callbacks) {
        if (entry.on_error) entry.on_error(cause);
      }
      delete node;
    }
  }

  void snapshot_into(std::vector<counter_value_t>& out) const {
    for (Node* node = head_; node != nullptr; node = node->next) {
      out.push_back(node->level);
    }
  }

 private:
  Node* head_ = nullptr;  // ascending by level; levels > value
};

/// Production alias — the pre-seam type, with the fault hook inlined
/// away (RealEngineEnv::alloc_point is an empty function).
using CallbackList = CallbackListT<>;

}  // namespace monotonic
