// striped_cells.hpp — the striped (LongAdder-style) value plane.
//
// The §7 engine makes every Increment take the wait-list mutex even
// when nobody is waiting; with a single atomic word (AtomicWordPlane)
// the mutex goes away but all producers still collide on one cache
// line.  This plane splits the value across cache-line-padded
// per-stripe cells: the counter's value is the SUM of the cells, each
// thread adds to a private-ish cell, and uncontended Increment is one
// fetch_add on a line no other producer touches.
//
// Monotonicity is what makes the split sound.  Each cell only grows,
// so any sum of per-cell loads is a lower bound on the true value at
// the moment the last cell was read — a Check that observes sum >=
// level can safely return, and successive sums never go backwards.
// A counter with Decrement could not be striped this way.
//
// The watermark protocol (no lost wakeups).  A single atomic
// `lowest_armed_level_` holds the lowest level any waiter or callback
// is parked on (kNoArmedLevel = none).  Writer side and waiter side
// each do a seq_cst store followed by a seq_cst load of the other's
// location — the classic store-buffering shape, which seq_cst's total
// order S resolves:
//
//   incrementer: fetch_add(cell)  [seq_cst]     waiter (under m_):
//                load(watermark)  [seq_cst]       store(watermark=L) [seq_cst]
//                [sum(cells) if armed, seq_cst]   sum(cells)         [seq_cst]
//
// Take increments i1..ik whose amounts sum past an armed level L, and
// let F be the latest of their fetch_adds in S.  If F's watermark load
// precedes the waiter's store in S, then the waiter's subsequent
// cell reads follow every fetch_add in S and its pre-park sum sees the
// full total — it never parks.  Otherwise F's load sees L armed, its
// cell reads follow every fetch_add in S, its sum reaches L, and it
// diverts to the locked slow path, which collapses the stripes and
// releases the waiter.  Either way the wakeup cannot be lost.
//
// §7's storage bound survives striping untouched: the wait plane
// keeps one node per distinct armed level whichever representation it
// uses, so storage stays O(live levels) + O(stripes), and the stripe
// array is a fixed-size allocation made once per counter, not per
// waiter.
//
// The argument is also wait-plane-representation-free.  The waiter's
// side of the pairing is "store(watermark=L) under m_, then sum" —
// nothing in it depends on HOW the wait plane computed L.  With the
// §7 ordered list L is the head's level (O(1)); with the sharded
// level index (WaitPlaneKind::kHeap, wait_index.hpp) L is the minimum
// over the shards' heap roots (an O(S) scan, still under m_).  Both
// feed the same seq_cst rearm store, so swapping the representation
// cannot reintroduce the store-buffering window — the sim scenario
// heap_cross_shard_wake explores exactly the cross-shard case.
#pragma once

#include <atomic>
#include <cstddef>
#include <limits>
#include <thread>
#include <vector>

#include "monotonic/core/counter_stats.hpp"
#include "monotonic/core/engine_env.hpp"
#include "monotonic/core/value_plane.hpp"
#include "monotonic/core/wait_list.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/support/cache.hpp"
#include "monotonic/support/config.hpp"

namespace monotonic {

namespace detail {

/// Default stripe count: hardware_concurrency rounded up to a power of
/// two (so slot % count degenerates to a mask), clamped to [1, 64].
inline std::size_t default_stripe_count() noexcept {
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  std::size_t n = 1;
  while (n < hw && n < 64) n <<= 1;
  return n;
}

}  // namespace detail

/// A cache-line-padded array of monotone atomic cells whose logical
/// value is the sum.  The storage half of StripedPlane, reusable on
/// its own (it knows nothing about waiters or watermarks).
template <typename Env = RealEngineEnv>
class StripedCellsT {
 public:
  /// `stripes` = 0 picks the hardware default.
  explicit StripedCellsT(std::size_t stripes)
      : cells_(stripes == 0 ? detail::default_stripe_count() : stripes) {}

  std::size_t stripe_count() const noexcept { return cells_.size(); }

  /// The calling thread's home cell index.  The slot comes from the
  /// environment: a process-wide round-robin ticket in production, the
  /// virtual thread's id under simulation (so replays are stable).
  std::size_t home_stripe() const noexcept {
    return Env::stripe_slot() % cells_.size();
  }

  /// Adds into one cell.  seq_cst so the caller's subsequent watermark
  /// load is ordered after it in the single total order (see the
  /// header comment); also a release, so sums that observe this add
  /// observe everything before it.
  void add(std::size_t stripe, counter_value_t amount) {
    cells_[stripe]->fetch_add(amount, std::memory_order_seq_cst);
  }

  counter_value_t load(std::size_t stripe) const noexcept {
    return cells_[stripe]->load(std::memory_order_relaxed);
  }

  /// Lower-bound sum with acquire loads: cheap, not linearizable, but
  /// monotone — good enough for `value >= level` fast paths.
  counter_value_t sum() const noexcept {
    counter_value_t total = 0;
    for (const auto& cell : cells_) {
      total += cell->load(std::memory_order_acquire);
    }
    return total;
  }

  /// Sum with seq_cst loads, for the watermark protocol's slow-path
  /// decision and the under-mutex collapse.
  counter_value_t sum_seq_cst() const noexcept {
    counter_value_t total = 0;
    for (const auto& cell : cells_) {
      total += cell->load(std::memory_order_seq_cst);
    }
    return total;
  }

  void reset() noexcept {
    for (auto& cell : cells_) cell->store(0, std::memory_order_release);
  }

 private:
  std::vector<CacheAligned<typename Env::template Atomic<counter_value_t>>>
      cells_;
};

/// The production instantiation (the historical name).
using StripedCells = StripedCellsT<>;

/// The striped value plane: StripedCells storage + the
/// lowest-armed-level watermark.  Plugs into BasicCounter as
/// BasicCounter<Policy, StripedPlane>; see value_plane.hpp for the
/// plane contract and the Sharded* aliases in counter.hpp & friends
/// for the blessed instantiations.
template <typename Env = RealEngineEnv>
class StripedPlaneT {
 public:
  using EngineEnv = Env;
  static constexpr bool kLockFreeFastPath = true;
  static constexpr bool kStriped = true;
  /// Same cap as the word plane: levels stay below kNoArmedLevel by
  /// construction, and the halved range keeps specs interchangeable
  /// between sharded and unsharded lock-free counters.
  static constexpr counter_value_t kMaxValue =
      std::numeric_limits<counter_value_t>::max() >> 1;

  StripedPlaneT(const WaitListOptions& options, CounterStats& stats)
      : cells_(options.stripes), stats_(stats) {
    stats_.set_stripe_count(cells_.stripe_count());
  }

  std::size_t stripe_count() const noexcept { return cells_.stripe_count(); }

  /// Lock-free publish: one fetch_add on this thread's home cell, then
  /// the watermark probe.  Returns true when the post-increment sum
  /// may have crossed an armed level (locked slow pass required).
  /// Overflow is checked per-cell before the add (optimistic, like the
  /// word plane): the cells sum into the logical value, so no single
  /// cell may exceed kMaxValue.
  bool add_fast(counter_value_t amount) {
    const std::size_t home = cells_.home_stripe();
    MC_REQUIRE(amount <= kMaxValue &&
                   cells_.load(home) <= kMaxValue - amount,
               "counter value overflow");
    cells_.add(home, amount);
    const counter_value_t armed =
        lowest_armed_level_.load(std::memory_order_seq_cst);
    if (armed == kNoArmedLevel) return false;  // nobody parked below us
    return cells_.sum_seq_cst() >= armed;
  }

  counter_value_t read_fast() const noexcept { return cells_.sum(); }

  // The remaining members require the counter mutex.

  /// Linearizable value: with the mutex held, every slow-path mutation
  /// is excluded and the seq_cst sum is a consistent cut.  Counted —
  /// collapses are the striped plane's slow-path currency.
  counter_value_t collapse() noexcept {
    stats_.on_collapse();
    return cells_.sum_seq_cst();
  }
  counter_value_t read_locked() const noexcept {
    stats_.on_collapse();
    return cells_.sum_seq_cst();
  }

  /// Waiter side of the watermark protocol: lower the watermark to
  /// `level` (if it isn't lower already), then collapse.  The seq_cst
  /// store-then-sum pairs with add_fast's add-then-load — see the
  /// header comment for why no wakeup can be lost.
  counter_value_t arm(counter_value_t level) {
    if (level < lowest_armed_level_.load(std::memory_order_relaxed)) {
      lowest_armed_level_.store(level, std::memory_order_seq_cst);
    }
    return collapse();
  }

  /// Recompute after wait-list / callback-list changes: `lowest` is
  /// the new lowest armed level (kNoArmedLevel = none), handed down by
  /// the engine from the ordered lists' heads.
  void rearm(counter_value_t lowest) {
    lowest_armed_level_.store(lowest, std::memory_order_seq_cst);
  }

  /// Poison: arm level 0, which every future sum satisfies, so every
  /// in-flight incrementer that passed the poison pre-check diverts to
  /// the locked slow path and drains there.  The engine never rearms a
  /// poisoned counter, so the pin holds until Reset.
  void pin() { lowest_armed_level_.store(0, std::memory_order_seq_cst); }

  void reset() {
    cells_.reset();
    lowest_armed_level_.store(kNoArmedLevel, std::memory_order_seq_cst);
  }

 private:
  StripedCellsT<Env> cells_;
  CounterStats& stats_;
  typename Env::template Atomic<counter_value_t> lowest_armed_level_{
      kNoArmedLevel};
};

/// The production instantiation (the historical name, used by every
/// Sharded* counter alias).
using StripedPlane = StripedPlaneT<>;

}  // namespace monotonic
