// futex_counter.hpp — counter on raw Linux futexes.
//
// A modern-OS implementation the paper could not have written in 2000:
// Increment is an atomic add plus one FUTEX_WAKE broadcast on a
// notification word; Check sleeps in the kernel with FUTEX_WAIT, no
// user-space queue at all.  Like SingleCvCounter it wakes all waiters
// per Increment (the kernel hashes waiters by address, and all waiters
// share one address), so it trades §7's O(released levels) wakeups for
// a syscall-thin fast path.  E10 measures the trade.
//
// On non-Linux platforms this header still compiles but the class
// degrades to the SingleCvCounter strategy via std::atomic wait/notify.
#pragma once

#include <atomic>
#include <cstdint>

#include "monotonic/core/counter_stats.hpp"
#include "monotonic/support/config.hpp"

namespace monotonic {

/// Futex-backed counter (Linux) / atomic-wait counter (portable fallback).
class FutexCounter {
 public:
  FutexCounter() = default;
  FutexCounter(const FutexCounter&) = delete;
  FutexCounter& operator=(const FutexCounter&) = delete;

  void Increment(counter_value_t amount = 1);
  void Check(counter_value_t level);
  void Reset();

  counter_value_t debug_value() const {
    return value_.load(std::memory_order_acquire);
  }

  CounterStatsSnapshot stats() const noexcept { return stats_.snapshot(); }
  void stats_reset() noexcept { stats_.reset(); }

 private:
  std::atomic<counter_value_t> value_{0};
  // 32-bit notification word: bumped on every Increment; waiters sleep
  // on it so a 64-bit value works with the 32-bit futex interface.
  std::atomic<std::uint32_t> notify_seq_{0};
  CounterStats stats_;
};

}  // namespace monotonic
