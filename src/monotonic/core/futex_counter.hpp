// futex_counter.hpp — counter sleeping on raw Linux futexes.
//
// A modern-OS implementation the paper could not have written in 2000:
// lock-free fast paths, and parked threads sleep in the kernel with
// FUTEX_WAIT on their wait-list node's 32-bit word — no condition
// variables.  Since the policy-based refactor this is the FutexWait
// instantiation of BasicCounter, which improves on the original
// free-standing version: waiters used to share one global notification
// word (so every Increment woke every sleeper); now each released
// *level* gets its own FUTEX_WAKE, restoring §7's O(released levels)
// wakeup bound while keeping the syscall-thin fast path.  E10 measures
// the remaining trade.
//
// On non-Linux platforms the futex shims degrade to std::atomic
// wait/notify (see wait_policy.hpp); the header still compiles.
// Full API documentation is on BasicCounter.
#pragma once

#include "monotonic/core/basic_counter.hpp"
#include "monotonic/core/striped_cells.hpp"
#include "monotonic/core/wait_policy.hpp"

namespace monotonic {

/// Futex-backed counter (Linux) / atomic-wait counter (portable fallback).
using FutexCounter = BasicCounter<FutexWait>;

/// Futex sleeping with the striped value plane (see striped_cells.hpp):
/// per-stripe increment cells + watermark, FUTEX_WAIT parking.
using ShardedFutexCounter = BasicCounter<FutexWait, StripedPlane>;

}  // namespace monotonic
