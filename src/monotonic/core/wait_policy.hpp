// wait_policy.hpp — swappable waiting policies for BasicCounter.
//
// A policy decides two things and nothing else:
//
//   1. whether the *fast paths* (uncontended Increment, already-
//      satisfied Check) are lock-free (`kLockFreeFastPath`) — lock-free
//      policies pack the value into an atomic word with bit 0 as a
//      "slow-path attention" flag, exactly the HybridCounter protocol;
//      locking policies keep a plain value under the counter mutex,
//      the paper's §7 discipline;
//
//   2. how a waiter parked on a wait-list node sleeps and how a
//      released node's waiters are woken (`Signal`, `wait`,
//      `wait_until`, `on_release`).
//
// The §7 reference is BlockingWait (mutex + per-node condition
// variable).  The design space the repo ablates (E10) is just the
// cross product {locked, lock-free} x {per-node cv, shared cv, futex
// word, spin flag}:
//
//   policy        fast path   per-node signal       wake granularity
//   BlockingWait  locked      condition variable    released levels
//   SingleCvWait  locked      shared condvar        every waiter (!)
//   FutexWait     lock-free   32-bit futex word     released levels
//   SpinWait      lock-free   atomic flag (poll)    released levels
//   HybridWait    lock-free   condition variable    released levels
//
// SingleCvWait deliberately broadcasts on every Increment — it is the
// naive baseline whose O(total waiters) spurious wakeups the paper's
// wait-list design eliminates; keeping it inside the same engine is
// what makes the E5/E10 comparisons structurally honest.
//
// All wait/wait_until hooks are entered and exited with the counter
// mutex held; policies that sleep outside the lock (futex, spin) drop
// and re-take it themselves.  The node cannot disappear while a policy
// waits on it: the caller holds a registration (waiters > 0).
//
// Every policy is a template over an engine environment (see
// engine_env.hpp): the mutex, condition variable, clock, atomics and
// futex calls it uses come from `Env`, so the same policy code runs
// against the real platform (RealEngineEnv — the default, and what the
// unsuffixed aliases below name) or inside the deterministic
// simulation harness (SimEngineEnv, monotonic/sim/), where each
// primitive is a seeded scheduler decision point.
//
// Failure-model hooks (engine poisoning / cancellation):
//
//   * a node released by Poison is marked `aborted` as well as
//     `released`, so the same on_release wake path covers both wake
//     causes and waiters classify on resume;
//   * `wake_waiters(node)` wakes a node's sleepers WITHOUT marking it
//     released — the cancellation nudge.  Woken waiters re-check their
//     own stop_token and re-sleep if it wasn't for them;
//   * `wait_cancellable(lock, node, stop)` is `wait` that also exits
//     when `stop` is triggered (SpinWait polls the token directly and
//     needs no nudge).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <stop_token>

#include "monotonic/core/counter_stats.hpp"
#include "monotonic/core/engine_env.hpp"
#include "monotonic/core/wait_list.hpp"
#include "monotonic/support/config.hpp"
#include "monotonic/support/spin_wait.hpp"

namespace monotonic {

/// §7 reference policy: every operation takes the counter mutex; each
/// wait-list node carries its own condition variable, so a release
/// wave over L levels issues exactly L notify_all calls however many
/// threads are waiting (the E5 claim).
template <typename Env = RealEngineEnv>
struct BlockingWaitT {
  using EngineEnv = Env;
  using Lock = std::unique_lock<typename Env::Mutex>;
  static constexpr bool kLockFreeFastPath = false;

  struct Signal {
    typename Env::CondVar cv;
    void reset() noexcept {}
  };
  using Node = typename WaitList<Signal, Env>::Node;

  /// Per released node, counter mutex held.  notify_all is issued
  /// under the lock: the node may only be freed by its last waiter,
  /// and waiters cannot resume until the lock drops, so the node is
  /// guaranteed alive here (a spuriously-woken waiter observing
  /// released==true could otherwise free it mid-notify).
  void on_release(Node& node, CounterStats& stats) {
    stats.on_notify();
    node.signal.cv.notify_all();
  }

  /// Per Increment, mutex held / dropped — nothing extra to do.
  void on_increment_locked(bool /*had_waiters*/, CounterStats&) {}
  void on_increment_unlocked(bool /*had_waiters*/) {}

  /// Value-plane hooks, counter mutex held.  on_publish fires when a
  /// waiter (or OnReach registration) arms `level` — the plane's
  /// watermark is about to drop to it; on_watermark fires when the
  /// engine recomputes the lowest armed level after list changes
  /// (kNoArmedLevel = fast path fully reopened).  No policy shipped
  /// here needs an action — the hooks exist so a policy can piggyback
  /// bookkeeping on the striped plane's arm/rearm transitions.
  void on_publish(counter_value_t /*level*/, CounterStats&) {}
  void on_watermark(counter_value_t /*lowest*/, CounterStats&) {}

  /// Cancellation nudge: wake the node's sleepers without marking it
  /// released.  Counter mutex held.
  void wake_waiters(Node& node) { node.signal.cv.notify_all(); }

  // Wait on the node's sticky `released` flag rather than re-deriving
  // value >= level, so the predicate stays correct even across a
  // (misused) Reset.  (An aborted node is released too — the caller
  // classifies the wake cause from node.aborted.)
  bool wait(Lock& lock, Node& node, CounterStats& stats) {
    while (!node.released) {
      node.signal.cv.wait(lock);
      if (!node.released) stats.on_spurious_wakeup();
    }
    return true;
  }

  bool wait_until(Lock& lock, Node& node,
                  std::chrono::steady_clock::time_point deadline,
                  CounterStats& stats) {
    while (!node.released) {
      if (node.signal.cv.wait_until(lock, deadline) ==
          std::cv_status::timeout) {
        return node.released;  // released at the wire: count as success
      }
      if (!node.released) stats.on_spurious_wakeup();
    }
    return true;
  }

  /// wait() that also exits (without the node released) once `stop` is
  /// triggered.  The engine nudges sleepers via wake_waiters from a
  /// stop_callback, so a wakeup with the token set is not spurious.
  void wait_cancellable(Lock& lock, Node& node, const std::stop_token& stop,
                        CounterStats& stats) {
    while (!node.released && !stop.stop_requested()) {
      node.signal.cv.wait(lock);
      if (!node.released && !stop.stop_requested()) {
        stats.on_spurious_wakeup();
      }
    }
  }
};

/// The naive broadcast baseline: one shared condition variable,
/// notify_all on EVERY Increment.  Waiters at unreached levels eat a
/// spurious wakeup per Increment — O(total waiters) work per operation
/// instead of O(released levels); E5/E10 quantify the difference.
template <typename Env = RealEngineEnv>
struct SingleCvWaitT {
  using EngineEnv = Env;
  using Lock = std::unique_lock<typename Env::Mutex>;
  static constexpr bool kLockFreeFastPath = false;

  struct Signal {
    void reset() noexcept {}
  };
  using Node = typename WaitList<Signal, Env>::Node;

  void on_release(Node&, CounterStats&) {}  // the broadcast covers it

  void on_increment_locked(bool /*had_waiters*/, CounterStats& stats) {
    stats.on_notify();
  }
  /// The shared cv outlives all nodes, so (unlike per-node signals) the
  /// broadcast can be issued after the lock is dropped — cheaper.
  void on_increment_unlocked(bool /*had_waiters*/) { cv_.notify_all(); }

  /// Value-plane hooks (see BlockingWaitT).  The striped engine calls
  /// on_increment_locked/unlocked on every slow pass, so the broadcast
  /// still covers every release even when most increments bypass the
  /// mutex — no watermark action needed.
  void on_publish(counter_value_t /*level*/, CounterStats&) {}
  void on_watermark(counter_value_t /*lowest*/, CounterStats&) {}

  /// Cancellation nudge: everyone sleeps on the shared cv, so the nudge
  /// is a broadcast (the cancelled waiter sorts itself out on resume).
  void wake_waiters(Node& /*node*/) { cv_.notify_all(); }

  bool wait(Lock& lock, Node& node, CounterStats& stats) {
    while (!node.released) {
      cv_.wait(lock);
      // Any wakeup that leaves us below the level is structural waste;
      // this is precisely the cost §7's wait-list design eliminates.
      if (!node.released) stats.on_spurious_wakeup();
    }
    return true;
  }

  bool wait_until(Lock& lock, Node& node,
                  std::chrono::steady_clock::time_point deadline,
                  CounterStats& stats) {
    while (!node.released) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        return node.released;
      }
      if (!node.released) stats.on_spurious_wakeup();
    }
    return true;
  }

  void wait_cancellable(Lock& lock, Node& node, const std::stop_token& stop,
                        CounterStats& stats) {
    while (!node.released && !stop.stop_requested()) {
      cv_.wait(lock);
      if (!node.released && !stop.stop_requested()) {
        stats.on_spurious_wakeup();
      }
    }
  }

 private:
  typename Env::CondVar cv_;
};

/// Kernel-queue policy: waiters sleep in FUTEX_WAIT on their node's
/// 32-bit word.  Unlike the pre-engine FutexCounter (which woke every
/// sleeper on every Increment), wakeups are targeted at released levels
/// only — the engine's list is what buys that.
///
/// Word protocol (every mutation happens under the counter mutex):
///   bit 0        — released (set once, by on_release);
///   bits 1..31   — wake generation, bumped by each cancellation nudge.
/// A waiter snapshots the word under the mutex, drops it, and sleeps in
/// FUTEX_WAIT against that snapshot.  Any concurrent release or nudge
/// changes the word first, so the syscall returns EAGAIN instead of
/// sleeping through the wake — the classic lost-wakeup race cannot
/// happen.  The generation bits are why a nudge cannot simply re-store
/// the same value: sleepers must observe a *different* word.
template <typename Env = RealEngineEnv>
struct FutexWaitT {
  using EngineEnv = Env;
  using Lock = std::unique_lock<typename Env::Mutex>;
  static constexpr bool kLockFreeFastPath = true;

  struct Signal {
    typename Env::template Atomic<std::uint32_t> word{0};
    void reset() noexcept { word.store(0, std::memory_order_relaxed); }
  };
  using Node = typename WaitList<Signal, Env>::Node;

  void on_release(Node& node, CounterStats& stats) {
    stats.on_notify();
    node.signal.word.fetch_or(1, std::memory_order_release);
    Env::futex_wake_all(&node.signal.word);
  }

  void on_increment_locked(bool /*had_waiters*/, CounterStats&) {}
  void on_increment_unlocked(bool /*had_waiters*/) {}

  /// Value-plane hooks (see BlockingWaitT): futex wakes are per-node,
  /// so arm/rearm transitions need no policy action.
  void on_publish(counter_value_t /*level*/, CounterStats&) {}
  void on_watermark(counter_value_t /*lowest*/, CounterStats&) {}

  /// Cancellation nudge: bump the generation and broadcast.  Counter
  /// mutex held, so the bump is ordered against every waiter snapshot.
  void wake_waiters(Node& node) {
    node.signal.word.fetch_add(2, std::memory_order_release);
    Env::futex_wake_all(&node.signal.word);
  }

  bool wait(Lock& lock, Node& node, CounterStats& stats) {
    while (!node.released) {
      // Snapshot under the mutex: released (bit 0) is still clear here,
      // and any release/nudge after the unlock changes the word.
      const std::uint32_t expected =
          node.signal.word.load(std::memory_order_relaxed);
      lock.unlock();
      Env::futex_wait(&node.signal.word, expected);
      lock.lock();
      if (!node.released) stats.on_spurious_wakeup();
    }
    return true;
  }

  bool wait_until(Lock& lock, Node& node,
                  std::chrono::steady_clock::time_point deadline,
                  CounterStats& stats) {
    while (!node.released) {
      const std::uint32_t expected =
          node.signal.word.load(std::memory_order_relaxed);
      lock.unlock();
      const bool awoken =
          Env::futex_wait_until(&node.signal.word, expected, deadline);
      lock.lock();
      if (node.released) return true;
      if (!awoken || Env::Clock::now() >= deadline) {
        return false;
      }
      stats.on_spurious_wakeup();
    }
    return true;
  }

  void wait_cancellable(Lock& lock, Node& node, const std::stop_token& stop,
                        CounterStats& stats) {
    while (!node.released && !stop.stop_requested()) {
      const std::uint32_t expected =
          node.signal.word.load(std::memory_order_relaxed);
      lock.unlock();
      // If the nudge already landed, stop_requested() was set before it
      // and the word differs from our snapshot — FUTEX_WAIT returns.
      Env::futex_wait(&node.signal.word, expected);
      lock.lock();
      if (!node.released && !stop.stop_requested()) {
        stats.on_spurious_wakeup();
      }
    }
  }
};

/// Busy-wait policy: a parked thread polls its node's atomic flag with
/// adaptive backoff — no kernel suspension at all, so it wins when
/// waits are short and cores are plentiful, and loses badly when
/// oversubscribed (the E10 crossover).
template <typename Env = RealEngineEnv>
struct SpinWaitT {
  using EngineEnv = Env;
  using Lock = std::unique_lock<typename Env::Mutex>;
  static constexpr bool kLockFreeFastPath = true;

  struct Signal {
    typename Env::template Atomic<bool> ready{false};
    void reset() noexcept { ready.store(false, std::memory_order_relaxed); }
  };
  using Node = typename WaitList<Signal, Env>::Node;

  void on_release(Node& node, CounterStats& stats) {
    stats.on_notify();
    node.signal.ready.store(true, std::memory_order_release);
  }

  void on_increment_locked(bool /*had_waiters*/, CounterStats&) {}
  void on_increment_unlocked(bool /*had_waiters*/) {}

  /// Value-plane hooks (see BlockingWaitT): spinners poll their own
  /// flag, so arm/rearm transitions need no policy action.
  void on_publish(counter_value_t /*level*/, CounterStats&) {}
  void on_watermark(counter_value_t /*lowest*/, CounterStats&) {}

  /// Spinners poll their stop_token directly — no nudge needed.
  void wake_waiters(Node& /*node*/) {}

  bool wait(Lock& lock, Node& node, CounterStats&) {
    auto& ready = node.signal.ready;
    lock.unlock();
    typename Env::SpinWaiter spinner;
    while (!ready.load(std::memory_order_acquire)) spinner.once();
    lock.lock();
    return true;
  }

  bool wait_until(Lock& lock, Node& node,
                  std::chrono::steady_clock::time_point deadline,
                  CounterStats&) {
    auto& ready = node.signal.ready;
    lock.unlock();
    typename Env::SpinWaiter spinner;
    while (!ready.load(std::memory_order_acquire)) {
      if (Env::Clock::now() >= deadline) {
        lock.lock();
        return node.released;  // released at the wire: success
      }
      spinner.once();
    }
    lock.lock();
    return true;
  }

  void wait_cancellable(Lock& lock, Node& node, const std::stop_token& stop,
                        CounterStats&) {
    auto& ready = node.signal.ready;
    lock.unlock();
    typename Env::SpinWaiter spinner;
    while (!ready.load(std::memory_order_acquire) && !stop.stop_requested()) {
      spinner.once();
    }
    lock.lock();
  }
};

/// Production-style hybrid: lock-free fast paths (the atomic-word
/// attention-bit protocol) + the §7 mutex/cv wait list on slow paths.
/// Identical signalling to BlockingWait; only the fast path differs
/// (the value-plane hooks on_publish/on_watermark are inherited too).
template <typename Env = RealEngineEnv>
struct HybridWaitT : BlockingWaitT<Env> {
  static constexpr bool kLockFreeFastPath = true;
};

/// The production instantiations — the names the rest of the library
/// (aliases, spec factory, tests, benches) has always used.
using BlockingWait = BlockingWaitT<>;
using SingleCvWait = SingleCvWaitT<>;
using FutexWait = FutexWaitT<>;
using SpinWait = SpinWaitT<>;
using HybridWait = HybridWaitT<>;

}  // namespace monotonic
