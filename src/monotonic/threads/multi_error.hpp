// multi_error.hpp — exception aggregation for structured thread groups.
//
// A multithreaded block joins all of its threads before continuing (§3),
// so exceptions from several threads can be pending at once.  They are
// collected and rethrown as one MultiError after the join.
#pragma once

#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

namespace monotonic {

/// Aggregate of one or more exceptions thrown by threads of a
/// multithreaded block or for-loop.
class MultiError : public std::runtime_error {
 public:
  explicit MultiError(std::vector<std::exception_ptr> errors);

  const std::vector<std::exception_ptr>& errors() const noexcept {
    return errors_;
  }
  std::size_t size() const noexcept { return errors_.size(); }

 private:
  static std::string compose_message(
      const std::vector<std::exception_ptr>& errors);
  std::vector<std::exception_ptr> errors_;
};

}  // namespace monotonic
