// pool.hpp — reusable thread team for repeated parallel regions.
//
// The paper's model (§3) creates threads per multithreaded block, which
// is faithful but expensive when a bench executes thousands of parallel
// regions.  ThreadTeam keeps `size` workers alive and replays a region
// body on all of them per run() call — the same construct OpenMP calls
// a thread team.  Benches use it so measured costs are synchronization,
// not clone(2).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "monotonic/threads/multi_error.hpp"

namespace monotonic {

/// Fixed team of worker threads executing parallel regions.
class ThreadTeam {
 public:
  /// Spawns `size` workers (>=1).  Workers idle until run() is called.
  explicit ThreadTeam(std::size_t size);

  /// Joins all workers.  Must not be called while run() is in progress.
  ~ThreadTeam();

  ThreadTeam(const ThreadTeam&) = delete;
  ThreadTeam& operator=(const ThreadTeam&) = delete;

  /// Executes body(tid) on every worker, tid in [0, size), and blocks
  /// until all have finished.  Exceptions are aggregated into a
  /// MultiError rethrown here.  Not reentrant; one region at a time.
  void run(const std::function<void(std::size_t)>& body);

  std::size_t size() const noexcept { return size_; }

 private:
  void worker(std::size_t tid);

  const std::size_t size_;
  std::mutex m_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* body_ = nullptr;  // current region
  std::uint64_t generation_ = 0;  // bumped per region; workers wait on it
  std::size_t remaining_ = 0;     // workers still in the current region
  bool shutting_down_ = false;
  std::vector<std::exception_ptr> errors_;
  std::vector<std::jthread> workers_;
};

}  // namespace monotonic
