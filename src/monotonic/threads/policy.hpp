// policy.hpp — execution policy for multithreaded constructs.
//
// §6: "if sequential execution of the program (i.e., execution ignoring
// the multithreaded keyword) does not deadlock, multithreaded execution
// is guaranteed not to deadlock and to produce the same results."
// Execution::kSequential is exactly "ignoring the keyword": statements
// / iterations run in program order on the calling thread.  The
// sequential-equivalence tests (E8) run every workload under both
// policies and require identical results.
#pragma once

namespace monotonic {

enum class Execution {
  kSequential,     ///< run statements in order on the calling thread
  kMultithreaded,  ///< run statements as concurrent threads (default)
};

/// Process-wide default used by multithreaded()/multithreaded_for()
/// when no explicit policy is passed.  Intended for tests that flip a
/// whole program between modes; not synchronized with running blocks.
Execution default_execution() noexcept;
void set_default_execution(Execution policy) noexcept;

/// RAII guard restoring the previous default on scope exit.
class ScopedExecution {
 public:
  explicit ScopedExecution(Execution policy)
      : previous_(default_execution()) {
    set_default_execution(policy);
  }
  ~ScopedExecution() { set_default_execution(previous_); }
  ScopedExecution(const ScopedExecution&) = delete;
  ScopedExecution& operator=(const ScopedExecution&) = delete;

 private:
  Execution previous_;
};

}  // namespace monotonic
