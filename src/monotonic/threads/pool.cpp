#include "monotonic/threads/pool.hpp"

#include "monotonic/support/assert.hpp"

namespace monotonic {

ThreadTeam::ThreadTeam(std::size_t size) : size_(size), errors_(size) {
  MC_REQUIRE(size >= 1, "team needs at least one worker");
  workers_.reserve(size);
  for (std::size_t tid = 0; tid < size; ++tid) {
    workers_.emplace_back([this, tid] { worker(tid); });
  }
}

ThreadTeam::~ThreadTeam() {
  {
    std::scoped_lock lock(m_);
    shutting_down_ = true;
  }
  start_cv_.notify_all();
  // jthread destructors join.
}

void ThreadTeam::worker(std::size_t tid) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* body;
    {
      std::unique_lock lock(m_);
      start_cv_.wait(lock, [&] {
        return shutting_down_ || generation_ != seen_generation;
      });
      if (shutting_down_) return;
      seen_generation = generation_;
      body = body_;
    }
    try {
      (*body)(tid);
    } catch (...) {
      std::scoped_lock lock(m_);
      errors_[tid] = std::current_exception();
    }
    {
      std::scoped_lock lock(m_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadTeam::run(const std::function<void(std::size_t)>& body) {
  {
    std::scoped_lock lock(m_);
    MC_REQUIRE(remaining_ == 0, "ThreadTeam::run is not reentrant");
    body_ = &body;
    remaining_ = size_;
    ++generation_;
  }
  start_cv_.notify_all();
  {
    std::unique_lock lock(m_);
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    body_ = nullptr;
  }

  std::vector<std::exception_ptr> collected;
  for (auto& ep : errors_) {
    if (ep) {
      collected.push_back(std::move(ep));
      ep = nullptr;
    }
  }
  if (!collected.empty()) throw MultiError(std::move(collected));
}

}  // namespace monotonic
