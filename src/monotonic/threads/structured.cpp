#include "monotonic/threads/structured.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace monotonic::detail {

namespace {

std::atomic<Execution>& default_execution_atomic() noexcept {
  static std::atomic<Execution> policy{Execution::kMultithreaded};
  return policy;
}

}  // namespace

void run_block(std::vector<std::function<void()>> statements,
               Execution policy, FailureDomain* domain) {
  if (statements.empty()) return;

  if (policy == Execution::kSequential) {
    // §6: execution ignoring the multithreaded keyword — program order,
    // calling thread, first exception propagates directly (wrapped for
    // a uniform catch surface).  The domain is still poisoned: later
    // statements never run, so their increments are never coming.
    for (auto& stmt : statements) {
      try {
        stmt();
      } catch (...) {
        if (domain != nullptr) domain->poison_all(std::current_exception());
        throw;
      }
    }
    return;
  }

  // Indexed exception slots keep the report deterministic (statement
  // order), independent of which thread failed first.
  std::vector<std::exception_ptr> errors(statements.size());
  std::atomic<bool> any_error{false};
  {
    std::vector<std::jthread> threads;
    threads.reserve(statements.size());
    for (std::size_t i = 0; i < statements.size(); ++i) {
      threads.emplace_back([&, i] {
        try {
          statements[i]();
        } catch (...) {
          errors[i] = std::current_exception();
          any_error.store(true, std::memory_order_release);
          // Poison before (not after) the join: siblings parked on a
          // domain counter can only unwind — and thus join — once the
          // poison wave reaches them.  Idempotent across multiple
          // failing statements (each counter's first poison wins).
          if (domain != nullptr) {
            domain->poison_all(errors[i]);
          }
        }
      });
    }
    // jthread joins on destruction: execution does not continue past
    // the block until all threads have individually terminated (§3).
  }

  if (any_error.load(std::memory_order_acquire)) {
    std::vector<std::exception_ptr> collected;
    for (auto& ep : errors) {
      if (ep) collected.push_back(std::move(ep));
    }
    throw MultiError(std::move(collected));
  }
}

}  // namespace monotonic::detail

namespace monotonic {

Execution default_execution() noexcept {
  return detail::default_execution_atomic().load(std::memory_order_relaxed);
}

void set_default_execution(Execution policy) noexcept {
  detail::default_execution_atomic().store(policy, std::memory_order_relaxed);
}

}  // namespace monotonic
