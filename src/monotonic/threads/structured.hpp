// structured.hpp — the paper's multithreaded block and for-loop (§3).
//
// The paper writes
//
//     multithreaded {            multithreaded
//       stmt0                    for (int i = lo; i < hi; i += step)
//       stmt1                      body(i)
//     }
//
// with parbegin/parend semantics: statements (iterations) run as
// asynchronous threads sharing the parent's address space; execution
// does not continue past the construct until every thread has
// terminated; the loop control variable is copied per thread.  Here:
//
//     multithreaded({stmt0, stmt1});
//     multithreaded_for(lo, hi, step, [&](int i) { body(i); });
//
// Both constructs accept an Execution policy; kSequential runs the
// statements in program order on the calling thread — the §6
// "execution ignoring the multithreaded keyword" that the sequential-
// equivalence guarantee is stated against.  Constructs nest freely.
//
// Exceptions: if any thread throws, the block still joins every thread
// (structure is never abandoned), then rethrows a MultiError carrying
// all captured exceptions, in statement order.
//
// Failure domains: the join-before-rethrow guarantee has a failure
// mode of its own — if statement A throws while statement B is parked
// in Check() on a level only A would have incremented, the join never
// completes.  A FailureDomain closes the loop: register the counters a
// block synchronizes through, pass the domain to multithreaded(), and
// the first failing statement poisons every registered counter —
// parked siblings unwind with CounterPoisonedError, the join
// completes, and the block throws one MultiError carrying both the
// original failure and the induced ones.
#pragma once

#include <exception>
#include <functional>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

#include "monotonic/core/counter_concept.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/threads/multi_error.hpp"
#include "monotonic/threads/policy.hpp"

namespace monotonic {

/// The set of counters a multithreaded block synchronizes through,
/// poisoned as one unit when any statement in the block throws.
/// References registered via watch() must outlive the domain.  Thread-
/// safe; poison_all is idempotent per counter (first poison wins) and
/// noexcept (it runs on failure paths).
class FailureDomain {
 public:
  FailureDomain() = default;
  FailureDomain(const FailureDomain&) = delete;
  FailureDomain& operator=(const FailureDomain&) = delete;

  /// Registers a counter for poison-on-failure.
  template <FailureAwareCounter C>
  void watch(C& counter) {
    std::scoped_lock lock(m_);
    sinks_.push_back(
        [&counter](std::exception_ptr cause) { counter.Poison(cause); });
  }

  /// Poisons every watched counter with `cause`.  Safe to call from
  /// multiple failing threads at once.
  void poison_all(std::exception_ptr cause) noexcept {
    std::vector<std::function<void(std::exception_ptr)>> sinks;
    {
      std::scoped_lock lock(m_);
      failed_ = true;
      sinks = sinks_;  // run the sinks outside the lock (CP.22)
    }
    for (auto& sink : sinks) {
      try {
        sink(cause);
      } catch (...) {
        // Poison must not throw; a sink that does is swallowed here so
        // the remaining counters are still released.
      }
    }
  }

  /// True once poison_all has run (diagnostics only).
  bool failed() const noexcept {
    std::scoped_lock lock(m_);
    return failed_;
  }

 private:
  mutable std::mutex m_;
  std::vector<std::function<void(std::exception_ptr)>> sinks_;
  bool failed_ = false;
};

namespace detail {

/// Runs `statements` per `policy`; joins all before returning.  When a
/// domain is given, the first failure poisons its counters.
void run_block(std::vector<std::function<void()>> statements,
               Execution policy, FailureDomain* domain = nullptr);

}  // namespace detail

/// Multithreaded block: each element of `statements` becomes a thread.
inline void multithreaded(std::vector<std::function<void()>> statements,
                          Execution policy) {
  detail::run_block(std::move(statements), policy);
}

inline void multithreaded(std::vector<std::function<void()>> statements) {
  detail::run_block(std::move(statements), default_execution());
}

/// Multithreaded block bound to a failure domain: if any statement
/// throws, every counter registered with the domain is poisoned before
/// the join, so siblings parked on those counters unwind instead of
/// deadlocking the block.
inline void multithreaded(std::vector<std::function<void()>> statements,
                          FailureDomain& domain, Execution policy) {
  detail::run_block(std::move(statements), policy, &domain);
}

inline void multithreaded(std::vector<std::function<void()>> statements,
                          FailureDomain& domain) {
  detail::run_block(std::move(statements), default_execution(), &domain);
}

/// Variadic convenience: multithreaded_block(fn0, fn1, fn2).
template <typename... Fns>
  requires(sizeof...(Fns) > 0 && (std::is_invocable_v<Fns&> && ...))
void multithreaded_block(Fns&&... fns) {
  std::vector<std::function<void()>> statements;
  statements.reserve(sizeof...(Fns));
  (statements.emplace_back(std::forward<Fns>(fns)), ...);
  detail::run_block(std::move(statements), default_execution());
}

/// Multithreaded for-loop over i = first; (step > 0 ? i < last : i > last);
/// i += step.  Each iteration runs as its own thread with a private copy
/// of i (§3).  `step` must be nonzero.
template <typename Int, typename Fn>
  requires std::is_integral_v<Int> && std::is_invocable_v<Fn&, Int>
void multithreaded_for(Int first, Int last, Int step, Fn&& body,
                       Execution policy) {
  MC_REQUIRE(step != 0, "multithreaded_for step must be nonzero");
  std::vector<std::function<void()>> statements;
  if (step > 0) {
    for (Int i = first; i < last; i += step) {
      statements.emplace_back([&body, i] { body(i); });
    }
  } else {
    for (Int i = first; i > last; i += step) {
      statements.emplace_back([&body, i] { body(i); });
    }
  }
  detail::run_block(std::move(statements), policy);
}

template <typename Int, typename Fn>
  requires std::is_integral_v<Int> && std::is_invocable_v<Fn&, Int>
void multithreaded_for(Int first, Int last, Int step, Fn&& body) {
  multithreaded_for(first, last, step, std::forward<Fn>(body),
                    default_execution());
}

/// Common unit-stride form: one thread per i in [0, count).
template <typename Int, typename Fn>
  requires std::is_integral_v<Int> && std::is_invocable_v<Fn&, Int>
void multithreaded_for(Int count, Fn&& body) {
  multithreaded_for(Int{0}, count, Int{1}, std::forward<Fn>(body),
                    default_execution());
}

}  // namespace monotonic
