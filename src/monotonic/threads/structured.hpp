// structured.hpp — the paper's multithreaded block and for-loop (§3).
//
// The paper writes
//
//     multithreaded {            multithreaded
//       stmt0                    for (int i = lo; i < hi; i += step)
//       stmt1                      body(i)
//     }
//
// with parbegin/parend semantics: statements (iterations) run as
// asynchronous threads sharing the parent's address space; execution
// does not continue past the construct until every thread has
// terminated; the loop control variable is copied per thread.  Here:
//
//     multithreaded({stmt0, stmt1});
//     multithreaded_for(lo, hi, step, [&](int i) { body(i); });
//
// Both constructs accept an Execution policy; kSequential runs the
// statements in program order on the calling thread — the §6
// "execution ignoring the multithreaded keyword" that the sequential-
// equivalence guarantee is stated against.  Constructs nest freely.
//
// Exceptions: if any thread throws, the block still joins every thread
// (structure is never abandoned), then rethrows a MultiError carrying
// all captured exceptions, in statement order.
#pragma once

#include <functional>
#include <type_traits>
#include <vector>

#include "monotonic/support/assert.hpp"
#include "monotonic/threads/multi_error.hpp"
#include "monotonic/threads/policy.hpp"

namespace monotonic {

namespace detail {

/// Runs `statements` per `policy`; joins all before returning.
void run_block(std::vector<std::function<void()>> statements,
               Execution policy);

}  // namespace detail

/// Multithreaded block: each element of `statements` becomes a thread.
inline void multithreaded(std::vector<std::function<void()>> statements,
                          Execution policy) {
  detail::run_block(std::move(statements), policy);
}

inline void multithreaded(std::vector<std::function<void()>> statements) {
  detail::run_block(std::move(statements), default_execution());
}

/// Variadic convenience: multithreaded_block(fn0, fn1, fn2).
template <typename... Fns>
  requires(sizeof...(Fns) > 0 && (std::is_invocable_v<Fns&> && ...))
void multithreaded_block(Fns&&... fns) {
  std::vector<std::function<void()>> statements;
  statements.reserve(sizeof...(Fns));
  (statements.emplace_back(std::forward<Fns>(fns)), ...);
  detail::run_block(std::move(statements), default_execution());
}

/// Multithreaded for-loop over i = first; (step > 0 ? i < last : i > last);
/// i += step.  Each iteration runs as its own thread with a private copy
/// of i (§3).  `step` must be nonzero.
template <typename Int, typename Fn>
  requires std::is_integral_v<Int> && std::is_invocable_v<Fn&, Int>
void multithreaded_for(Int first, Int last, Int step, Fn&& body,
                       Execution policy) {
  MC_REQUIRE(step != 0, "multithreaded_for step must be nonzero");
  std::vector<std::function<void()>> statements;
  if (step > 0) {
    for (Int i = first; i < last; i += step) {
      statements.emplace_back([&body, i] { body(i); });
    }
  } else {
    for (Int i = first; i > last; i += step) {
      statements.emplace_back([&body, i] { body(i); });
    }
  }
  detail::run_block(std::move(statements), policy);
}

template <typename Int, typename Fn>
  requires std::is_integral_v<Int> && std::is_invocable_v<Fn&, Int>
void multithreaded_for(Int first, Int last, Int step, Fn&& body) {
  multithreaded_for(first, last, step, std::forward<Fn>(body),
                    default_execution());
}

/// Common unit-stride form: one thread per i in [0, count).
template <typename Int, typename Fn>
  requires std::is_integral_v<Int> && std::is_invocable_v<Fn&, Int>
void multithreaded_for(Int count, Fn&& body) {
  multithreaded_for(Int{0}, count, Int{1}, std::forward<Fn>(body),
                    default_execution());
}

}  // namespace monotonic
