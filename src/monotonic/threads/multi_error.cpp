#include "monotonic/threads/multi_error.hpp"

namespace monotonic {

std::string MultiError::compose_message(
    const std::vector<std::exception_ptr>& errors) {
  std::string msg = std::to_string(errors.size()) +
                    " thread(s) of a multithreaded block failed:";
  for (const auto& ep : errors) {
    msg += "\n  - ";
    try {
      std::rethrow_exception(ep);
    } catch (const std::exception& e) {
      msg += e.what();
    } catch (...) {
      msg += "(non-std exception)";
    }
  }
  return msg;
}

MultiError::MultiError(std::vector<std::exception_ptr> errors)
    : std::runtime_error(compose_message(errors)), errors_(std::move(errors)) {}

}  // namespace monotonic
