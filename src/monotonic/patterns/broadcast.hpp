// broadcast.hpp — §5.3's single-writer multiple-reader broadcast.
//
//   "Counters can be used to provide elegant, flexible, and efficient
//    dataflow synchronization between a single writer and multiple
//    readers of a sequence of items written to an array.  ...  reading
//    an item does not remove it from the sequence — each reader
//    independently reads the entire sequence."
//
// BroadcastChannel<T> is that pattern: a fixed-capacity array, ONE
// counter, one writer cursor, and any number of independent reader
// cursors, each with its own synchronization granularity (block size).
// Contrast with BoundedBuffer (sync/bounded_buffer.hpp), where each
// item is consumed once — the two patterns genuinely differ (§5.3).
//
// ConditionPerItemBroadcast is the traditional-mechanism baseline for
// bench E4: one Condition object per item, the §4.4 strategy scaled to
// this pattern.  It needs O(items) synchronization objects where the
// counter needs one.
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <string_view>
#include <utility>
#include <vector>

#include "monotonic/core/counter_concept.hpp"
#include "monotonic/core/counter_error.hpp"
#include "monotonic/core/hybrid_counter.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/support/config.hpp"
#include "monotonic/sync/event.hpp"

namespace monotonic {

/// Thrown by Reader::get when the producer failed before publishing
/// the requested item (the channel was poisoned).  A specialization of
/// CounterPoisonedError: cause() carries the producer's original
/// exception when the channel was poisoned with one.
class BrokenChannelError : public CounterPoisonedError {
 public:
  explicit BrokenChannelError(std::exception_ptr cause = {})
      : CounterPoisonedError(
            "broadcast channel poisoned: the producer failed before "
            "publishing the requested item",
            std::move(cause)) {}
};

/// Single-writer multiple-reader broadcast over a fixed-size array,
/// synchronized by one monotonic counter.
///
/// Failure handling rides the counter's own failure model: poisoning
/// the channel IS poisoning the counter (no side flag, no sentinel
/// increments — both earlier designs this replaced could strand a
/// reader between the flag store and the counter release).  The frozen
/// counter value is exactly the number of published-and-announced
/// items, so "readable" and "throws BrokenChannelError" partition the
/// index space with no race window.
///
/// The sequence counter defaults to the sharded hybrid
/// ("sharded+hybrid"): publishing a block is a stripe fetch_add unless
/// a reader is parked at a level the block reaches, so a writer running
/// ahead of its readers never takes the wait-plane mutex.
template <typename T, FailureAwareCounter C = ShardedHybridCounter>
class BroadcastChannel {
 public:
  /// Channel carrying exactly `capacity` items per run.
  explicit BroadcastChannel(std::size_t capacity)
      : data_(capacity) {
    MC_REQUIRE(capacity >= 1, "capacity must be positive");
  }
  BroadcastChannel(const BroadcastChannel&) = delete;
  BroadcastChannel& operator=(const BroadcastChannel&) = delete;

  std::size_t capacity() const noexcept { return data_.size(); }
  C& counter() noexcept { return count_; }

  /// The single producer.  publish() items in order; the counter is
  /// incremented once per completed block (§5.3's blocked variant;
  /// block_size 1 reproduces the per-item variant).  Destroying the
  /// writer before publishing all `capacity` items flushes the partial
  /// block, so readers of published items never deadlock.
  class Writer {
   public:
    Writer(BroadcastChannel& channel, std::size_t block_size)
        : ch_(channel), block_(block_size) {
      MC_REQUIRE(block_size >= 1, "block size must be positive");
    }
    Writer(const Writer&) = delete;
    Writer& operator=(const Writer&) = delete;
    ~Writer() { flush(); }

    void publish(T item) {
      MC_REQUIRE(next_ < ch_.capacity(), "published past channel capacity");
      ch_.data_[next_] = std::move(item);
      ++next_;
      if (next_ % block_ == 0 || next_ == ch_.capacity()) {
        ch_.count_.Increment(next_ - announced_);
        announced_ = next_;
      }
    }

    /// Announces any buffered partial block immediately.
    void flush() {
      if (announced_ < next_) {
        ch_.count_.Increment(next_ - announced_);
        announced_ = next_;
      }
    }

    /// Marks the channel broken and releases every reader: items
    /// published so far stay readable (the partial block is flushed
    /// first), reads past them throw BrokenChannelError — carrying
    /// `cause` when given — instead of blocking forever on a producer
    /// that will never come back.  Call from the producer's failure
    /// path with std::current_exception() (Pipeline does this
    /// automatically).
    void poison(std::exception_ptr cause = {}) {
      flush();
      if (cause) {
        ch_.count_.Poison(std::move(cause));
      } else {
        ch_.count_.Poison(std::string_view("broadcast producer failed"));
      }
    }

    std::size_t published() const noexcept { return next_; }

   private:
    BroadcastChannel& ch_;
    const std::size_t block_;
    std::size_t next_ = 0;       // items written to the array
    std::size_t announced_ = 0;  // items made visible via the counter
  };

  /// An independent consumer cursor.  Each reader sees every item, in
  /// order, synchronizing once per block (readers may use different
  /// block sizes from the writer and from each other — §5.3: "There is
  /// no requirement that blockSize be the same in all threads").
  class Reader {
   public:
    Reader(BroadcastChannel& channel, std::size_t block_size)
        : ch_(channel), block_(block_size) {
      MC_REQUIRE(block_size >= 1, "block size must be positive");
    }

    /// Blocks until item i is published, then returns it.  Items must
    /// be requested in nondecreasing order for block batching to apply;
    /// random access is allowed but checks per item.  Throws
    /// BrokenChannelError when the producer failed before publishing
    /// item i (already-published items stay readable).
    const T& get(std::size_t i) {
      MC_REQUIRE(i < ch_.capacity(), "read past channel capacity");
      if (i >= synced_) {
        const std::size_t target =
            std::min(i - (i % block_) + block_, ch_.capacity());
        try {
          ch_.count_.Check(target);
          synced_ = target;
        } catch (const CounterPoisonedError&) {
          // Block batching over-asked (target can exceed i + 1); the
          // frozen value may still cover item i itself.  Re-check the
          // exact requirement: success below the freeze, or the real
          // verdict — translated into the channel's vocabulary.
          try {
            ch_.count_.Check(i + 1);
            synced_ = i + 1;
          } catch (const CounterPoisonedError& e) {
            throw BrokenChannelError(e.cause());
          }
        }
      }
      return ch_.data_[i];
    }

    /// Reads the full sequence, invoking fn(i, item).
    template <typename Fn>
    void for_each(Fn&& fn) {
      for (std::size_t i = 0; i < ch_.capacity(); ++i) fn(i, get(i));
    }

   private:
    BroadcastChannel& ch_;
    const std::size_t block_;
    std::size_t synced_ = 0;  // counter level known to be reached
  };

  Writer writer(std::size_t block_size = 1) { return Writer(*this, block_size); }
  Reader reader(std::size_t block_size = 1) { return Reader(*this, block_size); }

  /// True once a producer failed (poison()) — the counter's own state.
  bool poisoned() const { return count_.poisoned(); }

 private:
  std::vector<T> data_;
  C count_;
};

/// Traditional-mechanism baseline: one Condition per item (bench E4).
/// Same external contract as BroadcastChannel with block size 1.
template <typename T>
class ConditionPerItemBroadcast {
 public:
  explicit ConditionPerItemBroadcast(std::size_t capacity)
      : data_(capacity), ready_(capacity) {
    MC_REQUIRE(capacity >= 1, "capacity must be positive");
  }
  ConditionPerItemBroadcast(const ConditionPerItemBroadcast&) = delete;
  ConditionPerItemBroadcast& operator=(const ConditionPerItemBroadcast&) =
      delete;

  std::size_t capacity() const noexcept { return data_.size(); }

  void publish(std::size_t i, T item) {
    MC_REQUIRE(i < data_.size(), "published past capacity");
    data_[i] = std::move(item);
    ready_[i].Set();
  }

  const T& get(std::size_t i) {
    MC_REQUIRE(i < data_.size(), "read past capacity");
    ready_[i].Check();
    return data_[i];
  }

  /// Number of synchronization objects this baseline allocated — the
  /// structural cost §5.3 argues counters avoid.
  std::size_t sync_object_count() const noexcept { return ready_.size(); }

 private:
  std::vector<T> data_;
  std::vector<Condition> ready_;  // vector is sized once; Condition is
                                  // neither movable nor copyable
};

}  // namespace monotonic
