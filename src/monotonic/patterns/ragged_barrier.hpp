// ragged_barrier.hpp — §5.1's "ragged barrier" as a reusable component.
//
//   "With a ragged barrier, each thread waits at the barrier point only
//    until its own individual data dependencies have been satisfied,
//    instead of until the data dependencies of all threads have been
//    satisfied."
//
// One counter per party; a party *arrives* by incrementing its own
// counter and waits only on the counters of the parties it actually
// depends on.  Unlike a barrier's single N-way rendezvous, parties can
// run many phases apart, bounded only by the dependency structure.
//
// The counter array is the pattern's only state, confirming §5.1's cost
// note: "the number of counters needed is proportional to the number of
// threads, not to the problem size."
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "monotonic/core/counter_stats.hpp"

#include "monotonic/core/counter_concept.hpp"
#include "monotonic/core/hybrid_counter.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/support/cache.hpp"
#include "monotonic/support/config.hpp"

namespace monotonic {

/// Pairwise-dependency barrier over `parties` participants.  Arrivals
/// default to the sharded hybrid ("sharded+hybrid") so a party whose
/// dependents are running ahead ticks its counter without touching the
/// wait-plane mutex; only ticks that release a parked dependent
/// collapse the stripes.
template <CounterLike C = ShardedHybridCounter>
class RaggedBarrier {
 public:
  explicit RaggedBarrier(std::size_t parties) : counters_(parties) {
    MC_REQUIRE(parties >= 1, "ragged barrier needs at least one party");
  }
  RaggedBarrier(const RaggedBarrier&) = delete;
  RaggedBarrier& operator=(const RaggedBarrier&) = delete;

  /// Party `i` announces progress (one phase tick).
  void arrive(std::size_t i) { counter(i).Increment(1); }

  /// Blocks until party `i` has arrived at least `ticks` times.
  void wait_for(std::size_t i, counter_value_t ticks) {
    counter(i).Check(ticks);
  }

  /// Pre-satisfies a party's dependencies for all phases, e.g. the
  /// constant boundary cells in §5.1's heat simulation:
  ///   c[0].Increment(2*numSteps); c[N-1].Increment(2*numSteps);
  void preload(std::size_t i, counter_value_t ticks) {
    counter(i).Increment(ticks);
  }

  std::size_t parties() const noexcept { return counters_.size(); }

  C& counter(std::size_t i) {
    MC_REQUIRE(i < counters_.size(), "party index out of range");
    return counters_[i].value;
  }

  /// Structural stats summed over all party counters; max_* fields are
  /// the maximum over parties (per-counter high-water marks).  Only
  /// available when C is instrumented.
  CounterStatsSnapshot aggregate_stats() const
    requires requires(const C& c) { c.stats(); }
  {
    CounterStatsSnapshot total;
    for (const auto& slot : counters_) {
      const auto s = slot.value.stats();
      total.increments += s.increments;
      total.checks += s.checks;
      total.fast_checks += s.fast_checks;
      total.suspensions += s.suspensions;
      total.wakeups += s.wakeups;
      total.notifies += s.notifies;
      total.nodes_allocated += s.nodes_allocated;
      total.spurious_wakeups += s.spurious_wakeups;
      total.fast_path_increments += s.fast_path_increments;
      total.collapses += s.collapses;
      total.max_live_nodes =
          std::max(total.max_live_nodes, s.max_live_nodes);
      total.max_live_waiters =
          std::max(total.max_live_waiters, s.max_live_waiters);
      total.stripe_count = std::max(total.stripe_count, s.stripe_count);
    }
    return total;
  }

 private:
  // Cache-line isolation: parties hammer their own counter every phase.
  std::vector<CacheAligned<C>> counters_;
};

}  // namespace monotonic
