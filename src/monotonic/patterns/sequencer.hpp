// sequencer.hpp — §5.2's mutual exclusion with sequential ordering.
//
//   "Replacing the pair of lock operations with a pair of counter
//    operations can guarantee deterministic results. ...
//        resultCount.Check(i);
//        Accumulate(&result, subresult);
//        resultCount.Increment(1);"
//
// (The paper's listing prints the second operation as `Check(1)`; from
// the surrounding text — "resultCount.value >= i indicates that thread
// i-1 has completed its Accumulate operation" — it is plainly
// `Increment(1)`, and we implement that.)
//
// Sequencer generalizes the pair: run_in_order(i, fn) executes fn as
// the i-th critical section, giving mutual exclusion *and* a fixed,
// schedule-independent order.  Determinacy is bought with concurrency:
// thread i+1 cannot enter until thread i has left, even if it arrived
// first (quantified by bench E3).
#pragma once

#include <utility>

#include "monotonic/core/counter_concept.hpp"
#include "monotonic/core/hybrid_counter.hpp"
#include "monotonic/support/config.hpp"

namespace monotonic {

/// Orders critical sections by an explicit sequence index.  Every
/// section's thread increments the shared turn counter, so the default
/// is the sharded hybrid ("sharded+hybrid"): completions are stripe
/// fetch_adds unless a successor is already parked at its turn.
template <CounterLike C = ShardedHybridCounter>
class Sequencer {
 public:
  Sequencer() = default;
  Sequencer(const Sequencer&) = delete;
  Sequencer& operator=(const Sequencer&) = delete;

  /// Blocks until sections 0..i-1 have completed.
  void wait_turn(counter_value_t i) { turn_.Check(i); }

  /// Marks the current section complete, admitting the next one.
  void complete() { turn_.Increment(1); }

  /// Runs fn() as the i-th section: mutual exclusion + sequential order.
  /// Exceptions propagate, but the turn is still completed so later
  /// sections are not deadlocked (they may then see partial state —
  /// the same contract a lock gives).
  template <typename Fn>
  void run_in_order(counter_value_t i, Fn&& fn) {
    wait_turn(i);
    struct CompleteOnExit {
      Sequencer* self;
      ~CompleteOnExit() { self->complete(); }
    } guard{this};
    std::forward<Fn>(fn)();
  }

  C& counter() noexcept { return turn_; }

 private:
  C turn_;
};

}  // namespace monotonic
