// bounded_broadcast.hpp — §5.3 broadcast through a fixed-size ring.
//
// BroadcastChannel stores the whole sequence (capacity = item count);
// for long or unbounded streams that is the wrong shape.  This ring
// combines the paper's two flow-control ideas:
//
//   * §5.3 forward flow: readers Check the writer's counter before
//     reading item i (per-block granularity);
//   * §5.1-style backward flow: the writer Checks EVERY reader's
//     counter before overwriting slot i % ring: reader r must have
//     consumed item i - ring_size first.
//
// All counters are monotone cursors — the same structure the LMAX
// Disruptor builds from "sequences", which the calibration notes cite
// as this paper's closest production descendant.  Here it falls out of
// two counter patterns composed.
//
// Single writer, fixed reader count, every reader sees every item.
#pragma once

#include <cstddef>
#include <vector>

#include "monotonic/core/counter.hpp"
#include "monotonic/core/counter_concept.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/support/cache.hpp"
#include "monotonic/support/config.hpp"

namespace monotonic {

/// Streaming single-writer broadcast over a ring of `ring_size` slots
/// to a fixed set of readers.  Total stream length is unbounded.
template <typename T, CounterLike C = Counter>
class BoundedBroadcast {
 public:
  BoundedBroadcast(std::size_t ring_size, std::size_t num_readers)
      : ring_(ring_size), consumed_(num_readers) {
    MC_REQUIRE(ring_size >= 1, "ring must have at least one slot");
    MC_REQUIRE(num_readers >= 1, "need at least one reader");
  }
  BoundedBroadcast(const BoundedBroadcast&) = delete;
  BoundedBroadcast& operator=(const BoundedBroadcast&) = delete;

  std::size_t ring_size() const noexcept { return ring_.size(); }
  std::size_t num_readers() const noexcept { return consumed_.size(); }

  /// The single producer.
  class Writer {
   public:
    explicit Writer(BoundedBroadcast& ring) : ring_(ring) {}
    Writer(const Writer&) = delete;
    Writer& operator=(const Writer&) = delete;

    /// Publishes item `next`: waits until every reader has consumed
    /// item next - ring_size (so the slot is reusable), writes, then
    /// announces.
    void publish(T item) {
      const std::size_t i = next_;
      if (i >= ring_.ring_size()) {
        const counter_value_t must_have_consumed = i - ring_.ring_size() + 1;
        for (auto& cursor : ring_.consumed_) {
          cursor.value.Check(must_have_consumed);
        }
      }
      ring_.ring_[i % ring_.ring_size()] = std::move(item);
      ++next_;
      ring_.published_.Increment(1);
    }

    std::size_t published() const noexcept { return next_; }

   private:
    BoundedBroadcast& ring_;
    std::size_t next_ = 0;
  };

  /// Reader `id`'s cursor.  Items MUST be consumed strictly in order
  /// (the backward flow counter encodes exactly that).
  class Reader {
   public:
    Reader(BoundedBroadcast& ring, std::size_t id) : ring_(ring), id_(id) {
      MC_REQUIRE(id < ring.num_readers(), "reader id out of range");
    }
    Reader(const Reader&) = delete;
    Reader& operator=(const Reader&) = delete;

    /// Blocks until the next item is published, consumes it (copying
    /// out — the slot will be overwritten once ALL readers pass).
    T consume() {
      const std::size_t i = next_;
      ring_.published_.Check(i + 1);
      T item = ring_.ring_[i % ring_.ring_size()];
      ++next_;
      // Announce consumption AFTER copying: the writer may overwrite
      // the slot as soon as the slowest reader's counter reaches it.
      ring_.consumed_[id_].value.Increment(1);
      return item;
    }

    std::size_t consumed() const noexcept { return next_; }

   private:
    BoundedBroadcast& ring_;
    const std::size_t id_;
    std::size_t next_ = 0;
  };

  Writer writer() { return Writer(*this); }
  Reader reader(std::size_t id) { return Reader(*this, id); }

  C& published_counter() noexcept { return published_; }
  C& consumed_counter(std::size_t id) {
    MC_REQUIRE(id < consumed_.size(), "reader id out of range");
    return consumed_[id].value;
  }

 private:
  std::vector<T> ring_;
  C published_;
  std::vector<CacheAligned<C>> consumed_;  // one cursor per reader
};

}  // namespace monotonic
