// reduction.hpp — deterministic parallel reduction on counters.
//
// §5.2 buys determinism for non-associative accumulation by
// *serializing*: section i waits for section i-1.  When the operation
// is non-associative but the reduction ORDER merely has to be fixed
// (not left-to-right), there is a better trade: combine in a fixed
// binary tree.  The parenthesization is a function of the input length
// alone, so the result is identical on every schedule and thread count
// — deterministic like the sequencer, parallel like the lock version.
//
// Synchronization is the §1 dataflow idiom via TaskGraph: one counter
// per internal tree node; each combine waits on its two children.
//
//   fp sum:      tree_reduce(values, std::plus<>{}, threads)
//   reproducible min/argmin, string concat, matrix chains, ...
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "monotonic/core/hybrid_counter.hpp"
#include "monotonic/patterns/task_graph.hpp"
#include "monotonic/support/assert.hpp"

namespace monotonic {

/// Reference parenthesization: the same fixed tree, evaluated
/// sequentially.  tree_reduce is defined to equal this exactly.
template <typename T, typename Fn>
T tree_reduce_sequential(std::vector<T> values, Fn&& combine) {
  MC_REQUIRE(!values.empty(), "reduction of an empty range");
  // Level-by-level pairwise combination; odd tail elements pass
  // through unchanged.  (combine(a, b) keeps argument order: a is the
  // lower-indexed subtree.)
  while (values.size() > 1) {
    std::vector<T> next;
    next.reserve((values.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < values.size(); i += 2) {
      next.push_back(combine(values[i], values[i + 1]));
    }
    if (values.size() % 2 == 1) next.push_back(values.back());
    values = std::move(next);
  }
  return values.front();
}

/// Parallel fixed-tree reduction: bit-identical to
/// tree_reduce_sequential for every thread count and schedule.
template <typename T, typename Fn>
T tree_reduce(const std::vector<T>& values, Fn&& combine,
              std::size_t num_threads) {
  MC_REQUIRE(!values.empty(), "reduction of an empty range");
  MC_REQUIRE(num_threads >= 1, "need at least one thread");
  if (values.size() == 1) return values.front();

  // Slots hold intermediate results; level l's slots are appended
  // after level l-1's, and every combine task depends on the tasks
  // that produced its two inputs — expressed directly in TaskGraph.
  // Done-counters are the sharded hybrid ("sharded+hybrid"): a combine
  // whose consumers are still busy finishes with one stripe fetch_add.
  using Graph = TaskGraph<ShardedHybridCounter>;
  std::vector<T> slots = values;
  std::vector<Graph::TaskId> producer(values.size());

  Graph graph;
  // Leaves: trivial tasks so inner nodes have uniform dependencies.
  for (std::size_t i = 0; i < values.size(); ++i) {
    producer[i] = graph.add_task([] {});
  }

  std::vector<std::size_t> level_slots(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) level_slots[i] = i;

  while (level_slots.size() > 1) {
    std::vector<std::size_t> next_slots;
    next_slots.reserve((level_slots.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level_slots.size(); i += 2) {
      const std::size_t left = level_slots[i];
      const std::size_t right = level_slots[i + 1];
      const std::size_t out = slots.size();
      slots.push_back(T{});
      const auto task = graph.add_task(
          [&slots, &combine, left, right, out] {
            slots[out] = combine(slots[left], slots[right]);
          },
          {producer[left], producer[right]});
      producer.push_back(task);  // slot `out` aligns with this entry
      next_slots.push_back(out);
    }
    if (level_slots.size() % 2 == 1) {
      next_slots.push_back(level_slots.back());
    }
    level_slots = std::move(next_slots);
  }

  graph.run(num_threads);
  return slots[level_slots.front()];
}

}  // namespace monotonic
