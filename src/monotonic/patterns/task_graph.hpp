// task_graph.hpp — static task DAGs scheduled with one counter per task.
//
// The paper's §1 framing — "Check operations can be used to express
// data dependencies and Increment operations can be used to broadcast
// the availability of data to a set of waiting threads" — in its most
// literal form: a directed acyclic graph of tasks where task i runs
// after its predecessors.  Each task owns a counter; finishing is
// Increment(1); depending is Check(1) on each predecessor.  Any number
// of successors wait on the same counter (the broadcast), and the
// whole schedule is deterministic (§6).
//
// Execution model: tasks are indexed 0..n-1 with every dependency
// pointing to a smaller index (enforced at add_task); worker t runs
// tasks t, t+T, t+2T, ... in increasing order.  Deadlock-freedom is
// the §4.5 induction: the smallest unfinished task has all
// dependencies finished, and its owner reaches it after only smaller
// tasks of its own.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "monotonic/core/counter.hpp"
#include "monotonic/core/counter_concept.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {

/// A run-once DAG of tasks synchronized entirely by counters.
template <CounterLike C = Counter>
class TaskGraph {
 public:
  using TaskId = std::size_t;

  TaskGraph() = default;
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Adds a task depending on earlier tasks only (checked); returns its
  /// id.  The dependency-on-earlier rule both guarantees acyclicity and
  /// makes the cyclic worker assignment deadlock-free.
  TaskId add_task(std::function<void()> body,
                  std::vector<TaskId> dependencies = {}) {
    MC_REQUIRE(!ran_, "task graph already ran");
    const TaskId id = tasks_.size();
    for (TaskId dep : dependencies) {
      MC_REQUIRE(dep < id, "dependencies must reference earlier tasks");
    }
    tasks_.push_back(Task{std::move(body), std::move(dependencies),
                          std::make_unique<C>()});
    return id;
  }

  std::size_t size() const noexcept { return tasks_.size(); }

  /// Runs every task exactly once on `num_threads` workers, honouring
  /// all dependencies.  Blocks until the whole graph has finished.
  void run(std::size_t num_threads) {
    MC_REQUIRE(!ran_, "task graph already ran");
    MC_REQUIRE(num_threads >= 1, "need at least one worker");
    ran_ = true;
    if (tasks_.empty()) return;
    const std::size_t workers = std::min(num_threads, tasks_.size());

    multithreaded_for(
        std::size_t{0}, workers, std::size_t{1},
        [&](std::size_t t) {
          for (TaskId id = t; id < tasks_.size(); id += workers) {
            Task& task = tasks_[id];
            for (TaskId dep : task.dependencies) {
              tasks_[dep].done->Check(1);
            }
            task.body();
            task.done->Increment(1);
          }
        },
        Execution::kMultithreaded);
  }

  /// The counter of a task, e.g. for external consumers of its output.
  C& done_counter(TaskId id) {
    MC_REQUIRE(id < tasks_.size(), "task id out of range");
    return *tasks_[id].done;
  }

 private:
  struct Task {
    std::function<void()> body;
    std::vector<TaskId> dependencies;
    std::unique_ptr<C> done;  // value 1 once the task has finished
  };

  std::vector<Task> tasks_;
  bool ran_ = false;
};

}  // namespace monotonic
