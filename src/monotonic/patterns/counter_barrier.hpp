// counter_barrier.hpp — a cyclic N-party barrier built from ONE counter.
//
// §1: "a wide variety of sophisticated synchronization patterns can be
// expressed concisely using only a few counter operations."  A barrier
// is the simplest demonstration: party arrival is Increment(1), and
// "round r is complete" is exactly value >= r*N — one counter, no
// sense-reversal flag, no reset logic, reusable forever (up to 2^64
// arrivals).
//
//   CounterBarrier<> barrier(4);
//   // per thread:
//   auto p = barrier.participant();
//   for (...) { ...; p.Pass(); }
//
// Unlike CentralBarrier, a participant handle carries its own round
// number, so the object itself has no per-round mutable state beyond
// the counter — the monotone value encodes the entire history.
#pragma once

#include <cstddef>

#include "monotonic/core/counter_concept.hpp"
#include "monotonic/core/hybrid_counter.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/support/config.hpp"

namespace monotonic {

/// Reusable barrier on a single monotonic counter.  All N parties
/// increment the same counter every round, so the default is the
/// sharded hybrid (spec "sharded+hybrid"): arrivals land on private
/// stripes and only the round-crossing arrival collapses and wakes.
template <CounterLike C = ShardedHybridCounter>
class CounterBarrier {
 public:
  explicit CounterBarrier(std::size_t parties) : parties_(parties) {
    MC_REQUIRE(parties >= 1, "barrier needs at least one party");
  }
  CounterBarrier(const CounterBarrier&) = delete;
  CounterBarrier& operator=(const CounterBarrier&) = delete;

  /// A party's view of the barrier.  Each of the N threads holds one
  /// participant and calls Pass() once per round.
  class Participant {
   public:
    /// Arrive and wait for round completion.
    void Pass() {
      ++round_;
      barrier_->arrivals_.Increment(1);
      barrier_->arrivals_.Check(round_ * barrier_->parties_);
    }

    /// Rounds this participant has completed.
    counter_value_t rounds() const noexcept { return round_; }

   private:
    friend class CounterBarrier;
    explicit Participant(CounterBarrier* barrier) : barrier_(barrier) {}
    CounterBarrier* barrier_;
    counter_value_t round_ = 0;
  };

  Participant participant() { return Participant(this); }

  std::size_t parties() const noexcept { return parties_; }
  C& counter() noexcept { return arrivals_; }

 private:
  const std::size_t parties_;
  C arrivals_;
};

}  // namespace monotonic
