// dataflow_var.hpp — single-assignment variables rebuilt on a counter.
//
// §8: counters "extend [the dataflow] model by (i) separating the
// synchronization and data-holding functionality..."  DataflowVar<T>
// deliberately recombines them: a write-once slot whose readiness IS a
// counter at level 1.  Compared to sync/single_assignment.hpp (the
// classic mutex+condvar sync variable), this version inherits the
// counter's extras for free:
//
//   * get_for(timeout)  — from the counter's timed check;
//   * then(fn)          — async continuation via OnReach: runs in the
//                         setter's thread (or immediately if already
//                         set), no reader thread parked;
//   * one counter could gate many vars (see DataflowGroup below),
//     which a per-variable condvar cannot express.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "monotonic/core/counter.hpp"
#include "monotonic/core/counter_concept.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/support/config.hpp"

namespace monotonic {

/// Write-once dataflow cell on a counter.  Generic over the counter
/// implementation — any TimedCounterLike works since the policy-based
/// refactor made CheckFor/OnReach universal.
template <typename T, TimedCounterLike C = Counter>
class DataflowVar {
 public:
  DataflowVar() = default;
  DataflowVar(const DataflowVar&) = delete;
  DataflowVar& operator=(const DataflowVar&) = delete;

  /// Publishes the value (exactly once; checked).  Readers blocked in
  /// get() wake; continuations registered with then() run here.
  template <typename U>
  void set(U&& value) {
    MC_REQUIRE(!slot_.has_value(), "DataflowVar set twice");
    slot_.emplace(std::forward<U>(value));
    ready_.Increment(1);
  }

  /// Blocks until set; returns a reference valid for the cell lifetime.
  const T& get() const {
    ready_.Check(1);
    return *slot_;
  }

  /// Timed get: nullptr on timeout.
  template <typename Rep, typename Period>
  const T* get_for(std::chrono::duration<Rep, Period> timeout) const {
    if (!ready_.CheckFor(1, timeout)) return nullptr;
    return &*slot_;
  }

  /// Runs fn(value) once the value is available — immediately if it
  /// already is, otherwise in the setter's thread right after set().
  template <typename Fn>
  void then(Fn&& fn) {
    ready_.OnReach(1, [this, fn = std::forward<Fn>(fn)]() mutable {
      fn(*slot_);
    });
  }

  /// The underlying readiness counter (level 1 == set), for composing
  /// with check_all or external waits.
  C& ready() const noexcept { return ready_; }

 private:
  mutable C ready_;
  std::optional<T> slot_;
};

/// N write-once cells gated by ONE counter: cell i is readable once
/// i+1 values have been published (publication order is the index
/// order) — §5.3's broadcast array with future-style access.
template <typename T, TimedCounterLike C = Counter>
class DataflowGroup {
 public:
  explicit DataflowGroup(std::size_t size) : slots_(size) {
    MC_REQUIRE(size >= 1, "group must be nonempty");
  }
  DataflowGroup(const DataflowGroup&) = delete;
  DataflowGroup& operator=(const DataflowGroup&) = delete;

  std::size_t size() const noexcept { return slots_.size(); }

  /// Publishes the next cell (cells are set in index order — that is
  /// what lets one counter express all of their readiness).
  template <typename U>
  void set_next(U&& value) {
    const std::size_t i = next_;
    MC_REQUIRE(i < slots_.size(), "all cells already set");
    slots_[i].emplace(std::forward<U>(value));
    ++next_;
    ready_.Increment(1);
  }

  /// Blocks until cell i is set.
  const T& get(std::size_t i) const {
    MC_REQUIRE(i < slots_.size(), "index out of range");
    ready_.Check(i + 1);
    return *slots_[i];
  }

  /// Async continuation on cell i.
  template <typename Fn>
  void then(std::size_t i, Fn&& fn) {
    MC_REQUIRE(i < slots_.size(), "index out of range");
    ready_.OnReach(i + 1, [this, i, fn = std::forward<Fn>(fn)]() mutable {
      fn(*slots_[i]);
    });
  }

  C& ready() const noexcept { return ready_; }

 private:
  mutable C ready_;
  std::vector<std::optional<T>> slots_;
  std::size_t next_ = 0;  // single writer, per §5.3
};

}  // namespace monotonic
