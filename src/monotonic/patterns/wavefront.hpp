// wavefront.hpp — 2-D wavefront (dataflow) execution on counters.
//
// An extension of the §4 Floyd-Warshall idea to the classic wavefront
// dependence pattern: cell (r, c) depends on (r-1, c) and (r, c-1), as
// in dynamic-programming kernels (LCS, Smith-Waterman, SOR sweeps).
//
// One counter per row — the paper's signature move of replacing an
// array of per-cell events with one multi-level object per row:
// row r's counter value is the number of cells of row r completed, so
// "cell (r-1, c) is done" is exactly rows[r-1].Check(c+1).  Threads own
// whole rows (block-cyclic), and faster rows run ahead as far as the
// data dependencies allow — a 2-D ragged barrier.
#pragma once

#include <cstddef>
#include <vector>

#include "monotonic/core/counter.hpp"
#include "monotonic/core/counter_concept.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/support/cache.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {

/// Executes body(r, c) for every cell of a rows × cols grid, honouring
/// dependencies (r-1, c) → (r, c) and (c-1 precedes c within a row via
/// program order).  `num_threads` threads own rows cyclically.
///
/// Always runs multithreaded: like §4.5's Floyd-Warshall (and unlike
/// the §5.2/§5.3 patterns), a thread may wait on a row owned by a
/// not-yet-scheduled thread, so "execution ignoring the multithreaded
/// keyword" deadlocks — the program is deterministic (§6) but not
/// sequentially executable.  Deterministic results are still easy to
/// test: every schedule produces the same output.
template <CounterLike C = Counter, typename Fn>
void wavefront_rows(std::size_t rows, std::size_t cols,
                    std::size_t num_threads, Fn&& body) {
  MC_REQUIRE(rows >= 1 && cols >= 1, "grid must be nonempty");
  MC_REQUIRE(num_threads >= 1, "need at least one thread");

  std::vector<CacheAligned<C>> row_done(rows);

  multithreaded_for(
      std::size_t{0}, num_threads, std::size_t{1},
      [&](std::size_t t) {
        for (std::size_t r = t; r < rows; r += num_threads) {
          for (std::size_t c = 0; c < cols; ++c) {
            // Wait for the cell above; left neighbour is program order.
            if (r > 0) row_done[r - 1].value.Check(c + 1);
            body(r, c);
            row_done[r].value.Increment(1);
          }
        }
      },
      Execution::kMultithreaded);
}

}  // namespace monotonic
