// ragged_grid.hpp — ragged barrier for 2-D stencil decompositions.
//
// §5.1: "Similar boundary exchange requirements occur in most
// multithreaded simulations of physical systems in one or more
// dimensions."  This is the "or more" part: a grid of row-strips, each
// owned by one thread, each strip exchanging halo rows with the strips
// above and below.  The protocol generalizes §5.1's counter phases:
//
//   counter value 2t-1  — strip finished READING both halo rows for
//                         step t (neighbours may overwrite theirs);
//   counter value 2t    — strip finished WRITING step t (neighbours
//                         may read).
//
// Exactly one counter per strip, independent of the grid size — §5.1's
// cost argument again.
#pragma once

#include <cstddef>

#include "monotonic/core/counter.hpp"
#include "monotonic/core/counter_concept.hpp"
#include "monotonic/patterns/ragged_barrier.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/support/config.hpp"

namespace monotonic {

/// Neighbour-sync helper for row-strip decompositions.  Wraps a
/// RaggedBarrier with the read/write phase protocol so stencil codes
/// cannot get the 2t-1/2t arithmetic wrong.
template <CounterLike C = Counter>
class RaggedStrips {
 public:
  explicit RaggedStrips(std::size_t strips) : barrier_(strips) {}

  std::size_t strips() const noexcept { return barrier_.parties(); }

  /// Pre-satisfies a constant strip (e.g. fixed boundary rows) for all
  /// `steps` time steps.
  void preload_constant(std::size_t strip, std::size_t steps) {
    barrier_.preload(strip, 2 * static_cast<counter_value_t>(steps));
  }

  /// Blocks until both neighbours of `strip` have *completed* step
  /// t-1, making their halo rows final.  Edge strips skip the missing
  /// side.
  void wait_neighbours_written(std::size_t strip, std::size_t t) {
    const auto level = 2 * static_cast<counter_value_t>(t) - 2;
    if (strip > 0) barrier_.wait_for(strip - 1, level);
    if (strip + 1 < strips()) barrier_.wait_for(strip + 1, level);
  }

  /// Announces that `strip` has finished reading its halo rows for
  /// step t (value becomes 2t-1).
  void done_reading(std::size_t strip) { barrier_.arrive(strip); }

  /// Blocks until both neighbours have finished *reading* for step t,
  /// so overwriting this strip's halo rows cannot lose data.
  void wait_neighbours_read(std::size_t strip, std::size_t t) {
    const auto level = 2 * static_cast<counter_value_t>(t) - 1;
    if (strip > 0) barrier_.wait_for(strip - 1, level);
    if (strip + 1 < strips()) barrier_.wait_for(strip + 1, level);
  }

  /// Announces that `strip` has completed step t (value becomes 2t).
  void done_writing(std::size_t strip) { barrier_.arrive(strip); }

  RaggedBarrier<C>& barrier() noexcept { return barrier_; }

 private:
  RaggedBarrier<C> barrier_;
};

}  // namespace monotonic
