// heat2d.hpp — 2-D heat diffusion with row-strip threads.
//
// Extends §5.1 to two dimensions (the paper: boundary exchange "in one
// or more dimensions").  The grid's boundary rows/columns are held
// constant; interior cells update by the 5-point Jacobi stencil.  The
// multithreaded variants assign each thread a strip of rows and
// synchronize strip halos — with a global barrier (baseline) or with
// one counter per strip (RaggedStrips).  All variants are bit-exact
// against the sequential reference.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "monotonic/core/counter.hpp"
#include "monotonic/core/counter_concept.hpp"
#include "monotonic/patterns/ragged_grid.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/sync/barrier.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {

/// Dense row-major grid of cell temperatures.
class Grid2D {
 public:
  Grid2D() = default;
  Grid2D(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), cells_(rows * cols, fill) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& at(std::size_t r, std::size_t c) {
    MC_ASSERT(r < rows_ && c < cols_, "index out of range");
    return cells_[r * cols_ + c];
  }
  double at(std::size_t r, std::size_t c) const {
    MC_ASSERT(r < rows_ && c < cols_, "index out of range");
    return cells_[r * cols_ + c];
  }

  double* row(std::size_t r) { return cells_.data() + r * cols_; }
  const double* row(std::size_t r) const { return cells_.data() + r * cols_; }

  bool operator==(const Grid2D&) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> cells_;
};

/// The 5-point stencil rule shared by every implementation.
constexpr double heat2d_update(double up, double left, double centre,
                               double right, double down) noexcept {
  return centre + 0.125 * (up + left + right + down - 4.0 * centre);
}

struct Heat2dOptions {
  std::size_t steps = 100;
  std::size_t num_threads = 4;
  /// Optional stall for strip `s` at step `t` (imbalance experiments).
  std::function<void(std::size_t s, std::size_t t)> strip_hook;
};

/// Sequential double-buffered reference.
Grid2D heat2d_sequential(Grid2D grid, const Heat2dOptions& options);

/// Strip threads + one global barrier per phase (baseline).
Grid2D heat2d_barrier(Grid2D grid, const Heat2dOptions& options);

/// Strip threads + one counter per strip (RaggedStrips).
Grid2D heat2d_ragged(Grid2D grid, const Heat2dOptions& options);

/// heat2d_ragged generalized over the counter implementation.
template <CounterLike C>
Grid2D heat2d_ragged_with(Grid2D grid, const Heat2dOptions& options) {
  const std::size_t rows = grid.rows();
  const std::size_t cols = grid.cols();
  MC_REQUIRE(rows >= 3 && cols >= 3, "need at least one interior cell");
  MC_REQUIRE(options.num_threads >= 1, "need at least one thread");

  const std::size_t interior = rows - 2;
  const std::size_t strips = std::min(options.num_threads, interior);
  RaggedStrips<C> sync(strips);
  const std::size_t steps = options.steps;

  // Strip s owns interior rows [1 + s*interior/strips, 1 + (s+1)*interior/strips).
  auto strip_begin = [&](std::size_t s) { return 1 + s * interior / strips; };
  auto strip_end = [&](std::size_t s) {
    return 1 + (s + 1) * interior / strips;
  };

  multithreaded_for(
      std::size_t{0}, strips, std::size_t{1},
      [&](std::size_t s) {
        const std::size_t begin = strip_begin(s);
        const std::size_t end = strip_end(s);
        // Private copy of the strip (plus scratch halo rows): the same
        // my_state trick as §5.1's program, lifted to row strips.
        std::vector<double> mine((end - begin) * cols);
        for (std::size_t r = begin; r < end; ++r) {
          for (std::size_t c = 0; c < cols; ++c) {
            mine[(r - begin) * cols + c] = grid.at(r, c);
          }
        }
        std::vector<double> halo_up(cols), halo_down(cols);

        for (std::size_t t = 1; t <= steps; ++t) {
          if (options.strip_hook) options.strip_hook(s, t);
          // Read halos once neighbours have completed step t-1.  The
          // boundary rows (0 and rows-1) are constant, so strips at the
          // edges read them without waiting (handled by RaggedStrips'
          // missing-side skip plus the constant rows never changing).
          sync.wait_neighbours_written(s, t);
          for (std::size_t c = 0; c < cols; ++c) {
            halo_up[c] = grid.at(begin - 1, c);
            halo_down[c] = grid.at(end, c);
          }
          sync.done_reading(s);

          // Compute the new strip from private state + halos.
          std::vector<double> next((end - begin) * cols);
          for (std::size_t r = begin; r < end; ++r) {
            const std::size_t lr = r - begin;
            const double* up_row =
                lr == 0 ? halo_up.data() : &mine[(lr - 1) * cols];
            const double* down_row = (r + 1 == end)
                                         ? halo_down.data()
                                         : &mine[(lr + 1) * cols];
            for (std::size_t c = 0; c < cols; ++c) {
              if (c == 0 || c + 1 == cols) {
                next[lr * cols + c] = mine[lr * cols + c];  // fixed columns
              } else {
                next[lr * cols + c] = heat2d_update(
                    up_row[c], mine[lr * cols + c - 1], mine[lr * cols + c],
                    mine[lr * cols + c + 1], down_row[c]);
              }
            }
          }
          mine.swap(next);

          // Publish once neighbours have read our previous halo rows.
          sync.wait_neighbours_read(s, t);
          for (std::size_t r = begin; r < end; ++r) {
            for (std::size_t c = 0; c < cols; ++c) {
              grid.at(r, c) = mine[(r - begin) * cols + c];
            }
          }
          sync.done_writing(s);
        }
      },
      Execution::kMultithreaded);

  return grid;
}

}  // namespace monotonic
