#include "monotonic/algos/paraffins.hpp"

#include <functional>

#include "monotonic/patterns/pipeline.hpp"
#include "monotonic/support/assert.hpp"

namespace monotonic {

namespace {

/// Multichoose: number of multisets of size k drawn from n kinds.
constexpr std::uint64_t multichoose(std::uint64_t n, std::uint64_t k) {
  // C(n+k-1, k) for the small k (<= 4) used here.
  switch (k) {
    case 0:
      return 1;
    case 1:
      return n;
    case 2:
      return n * (n + 1) / 2;
    case 3:
      return n * (n + 1) * (n + 2) / 6;
    case 4:
      return n * (n + 1) * (n + 2) * (n + 3) / 24;
    default:
      MC_REQUIRE(false, "multichoose: unsupported k");
      return 0;
  }
}

/// Order-sensitive fold for stage checksums (same shape as the
/// compositions workload, distinct constants).
constexpr std::uint64_t fold(std::uint64_t acc, std::uint64_t item) {
  return (acc * 0x100000001b3ull) ^ (item + 0x9e3779b97f4a7c15ull);
}

/// Canonical hash of a radical from its three ordered children hashes.
constexpr std::uint64_t combine(std::uint64_t a, std::uint64_t b,
                                std::uint64_t c) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fold(h, a);
  h = fold(h, b);
  h = fold(h, c);
  return h | 1;  // never zero, distinguishes from the hydrogen seed
}

constexpr std::uint64_t kHydrogenSeed = 0x48ull;  // 'H'

/// radicals[k] for k <= max, by the multiset recurrence (no items).
std::vector<std::uint64_t> radical_counts(std::size_t max) {
  std::vector<std::uint64_t> r(max + 1, 0);
  r[0] = 1;  // hydrogen
  for (std::size_t n = 1; n <= max; ++n) {
    const std::size_t budget = n - 1;
    std::uint64_t total = 0;
    for (std::size_t s1 = 0; 3 * s1 <= budget; ++s1) {
      for (std::size_t s2 = s1; s1 + 2 * s2 <= budget; ++s2) {
        const std::size_t s3 = budget - s1 - s2;
        if (s3 < s2) continue;
        if (s1 == s2 && s2 == s3) {
          total += multichoose(r[s1], 3);
        } else if (s1 == s2) {
          total += multichoose(r[s1], 2) * r[s3];
        } else if (s2 == s3) {
          total += r[s1] * multichoose(r[s2], 2);
        } else {
          total += r[s1] * r[s2] * r[s3];
        }
      }
    }
    r[n] = total;
  }
  return r;
}

/// Alkane counts by centroid decomposition over radical counts.
std::vector<std::uint64_t> alkane_counts(
    const std::vector<std::uint64_t>& radicals, std::size_t max) {
  std::vector<std::uint64_t> a(max + 1, 0);
  for (std::size_t n = 1; n <= max; ++n) {
    const std::size_t budget = n - 1;
    const std::size_t limit = budget / 2;  // every branch <= (n-1)/2
    std::uint64_t centroid = 0;
    for (std::size_t s1 = 0; s1 <= limit; ++s1) {
      for (std::size_t s2 = s1; s2 <= limit; ++s2) {
        for (std::size_t s3 = s2; s3 <= limit; ++s3) {
          if (s1 + s2 + s3 > budget) break;
          const std::size_t s4 = budget - s1 - s2 - s3;
          if (s4 < s3 || s4 > limit) continue;
          // Multichoose per group of equal sizes.
          std::size_t sizes[4] = {s1, s2, s3, s4};
          std::uint64_t ways = 1;
          std::size_t i = 0;
          while (i < 4) {
            std::size_t j = i;
            while (j < 4 && sizes[j] == sizes[i]) ++j;
            ways *= multichoose(radicals[sizes[i]], j - i);
            i = j;
          }
          centroid += ways;
        }
      }
    }
    std::uint64_t bicentroid = 0;
    if (n % 2 == 0) {
      bicentroid = multichoose(radicals[n / 2], 2);
    }
    a[n] = centroid + bicentroid;
  }
  return a;
}

/// Enumerates stage n's radicals in canonical order.  `item(s, i)`
/// returns the i-th radical hash of stage s (blocking in the pipeline
/// variant); each generated radical is passed to `emit`.
void enumerate_stage(
    std::size_t n, const std::vector<std::uint64_t>& counts,
    const std::function<std::uint64_t(std::size_t, std::size_t)>& item,
    const std::function<void(std::uint64_t)>& emit) {
  if (n == 0) {
    emit(kHydrogenSeed);
    return;
  }
  const std::size_t budget = n - 1;
  for (std::size_t s1 = 0; 3 * s1 <= budget; ++s1) {
    for (std::size_t s2 = s1; s1 + 2 * s2 <= budget; ++s2) {
      const std::size_t s3 = budget - s1 - s2;
      if (s3 < s2) continue;
      for (std::size_t i1 = 0; i1 < counts[s1]; ++i1) {
        const std::uint64_t h1 = item(s1, i1);
        const std::size_t i2_begin = s2 == s1 ? i1 : 0;
        for (std::size_t i2 = i2_begin; i2 < counts[s2]; ++i2) {
          const std::uint64_t h2 = item(s2, i2);
          const std::size_t i3_begin = s3 == s2 ? i2 : 0;
          for (std::size_t i3 = i3_begin; i3 < counts[s3]; ++i3) {
            emit(combine(h1, h2, item(s3, i3)));
          }
        }
      }
    }
  }
}

std::vector<std::uint64_t> checksums_of(
    const std::vector<std::vector<std::uint64_t>>& stages) {
  std::vector<std::uint64_t> sums(stages.size(), 0);
  for (std::size_t k = 0; k < stages.size(); ++k) {
    std::uint64_t acc = 0;
    for (std::uint64_t h : stages[k]) acc = fold(acc, h);
    sums[k] = acc;
  }
  return sums;
}

}  // namespace

ParaffinsResult paraffins_sequential(std::size_t max_carbons) {
  const auto counts = radical_counts(max_carbons);

  std::vector<std::vector<std::uint64_t>> stages(max_carbons + 1);
  for (std::size_t n = 0; n <= max_carbons; ++n) {
    stages[n].reserve(counts[n]);
    enumerate_stage(
        n, counts,
        [&](std::size_t s, std::size_t i) { return stages[s][i]; },
        [&](std::uint64_t h) { stages[n].push_back(h); });
    MC_CHECK(stages[n].size() == counts[n],
             "enumeration disagrees with the counting recurrence");
  }

  ParaffinsResult result;
  result.radicals = counts;
  result.alkanes = alkane_counts(counts, max_carbons);
  result.radical_checksums = checksums_of(stages);
  return result;
}

ParaffinsResult paraffins_pipeline(std::size_t max_carbons,
                                   std::size_t block_size,
                                   Execution policy) {
  const auto counts = radical_counts(max_carbons);

  Pipeline<std::uint64_t> pipeline;
  for (std::size_t n = 0; n <= max_carbons; ++n) {
    pipeline.add_stage(
        counts[n],
        [n, &counts](Pipeline<std::uint64_t>::Context& ctx) {
          enumerate_stage(
              n, counts,
              [&](std::size_t s, std::size_t i) { return ctx.read(s, i); },
              [&](std::uint64_t h) { ctx.emit(h); });
        },
        block_size);
  }
  pipeline.run(policy);

  std::vector<std::vector<std::uint64_t>> stages(max_carbons + 1);
  for (std::size_t n = 0; n <= max_carbons; ++n) {
    stages[n] = pipeline.output(n);
  }

  ParaffinsResult result;
  result.radicals = counts;
  result.alkanes = alkane_counts(counts, max_carbons);
  result.radical_checksums = checksums_of(stages);
  return result;
}

}  // namespace monotonic
