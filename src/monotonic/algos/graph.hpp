// graph.hpp — dense weighted digraphs for the shortest-path experiments.
//
// §4.1: input is the edge-weight matrix of a weighted directed graph
// with no negative-length cycles and zero self-edge weights; output is
// the matrix of all-pairs shortest path lengths.  Missing edges are
// kInfinity (Figure 1 uses ∞).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "monotonic/support/assert.hpp"

namespace monotonic {

/// Edge weight type.  64-bit so that `kInfinity + weight` cannot wrap
/// for any realistic input (additions are still guarded).
using weight_t = std::int64_t;

/// "No edge".  Chosen so kInfinity + kInfinity does not overflow.
inline constexpr weight_t kInfinity = static_cast<weight_t>(1) << 60;

/// Dense row-major square matrix of edge weights / path lengths.
class SquareMatrix {
 public:
  SquareMatrix() = default;
  explicit SquareMatrix(std::size_t n, weight_t fill = kInfinity)
      : n_(n), cells_(n * n, fill) {}

  std::size_t size() const noexcept { return n_; }

  weight_t& at(std::size_t i, std::size_t j) {
    MC_ASSERT(i < n_ && j < n_, "index out of range");
    return cells_[i * n_ + j];
  }
  weight_t at(std::size_t i, std::size_t j) const {
    MC_ASSERT(i < n_ && j < n_, "index out of range");
    return cells_[i * n_ + j];
  }

  weight_t* row(std::size_t i) { return cells_.data() + i * n_; }
  const weight_t* row(std::size_t i) const { return cells_.data() + i * n_; }

  bool operator==(const SquareMatrix&) const = default;

 private:
  std::size_t n_ = 0;
  std::vector<weight_t> cells_;
};

/// Saturating path addition: a step through kInfinity stays unreachable.
constexpr weight_t path_add(weight_t a, weight_t b) noexcept {
  return (a >= kInfinity || b >= kInfinity) ? kInfinity : a + b;
}

/// Options for random graph generation.
struct GraphOptions {
  std::uint64_t seed = 42;
  double edge_probability = 0.5;  ///< density of non-infinite edges
  weight_t min_weight = 1;        ///< inclusive
  weight_t max_weight = 100;      ///< inclusive
  /// When true, a fraction of edges get small negative weights, with a
  /// positive vertex potential applied so no negative cycle can form
  /// (Johnson-style reweighting run in reverse).
  bool allow_negative = false;
};

/// Random edge matrix: zero diagonal, kInfinity non-edges, weights in
/// [min_weight, max_weight].  Deterministic in the seed.
SquareMatrix random_graph(std::size_t n, const GraphOptions& options = {});

/// The worked example of Figure 1 (3 vertices), for unit tests.
SquareMatrix figure1_edges();
/// Figure 1's expected output matrix.
SquareMatrix figure1_paths();

}  // namespace monotonic
