#include "monotonic/algos/heat2d.hpp"

#include <algorithm>

namespace monotonic {

Grid2D heat2d_sequential(Grid2D grid, const Heat2dOptions& options) {
  const std::size_t rows = grid.rows();
  const std::size_t cols = grid.cols();
  MC_REQUIRE(rows >= 3 && cols >= 3, "need at least one interior cell");

  Grid2D next = grid;
  for (std::size_t t = 1; t <= options.steps; ++t) {
    if (options.strip_hook) options.strip_hook(0, t);
    for (std::size_t r = 1; r + 1 < rows; ++r) {
      for (std::size_t c = 1; c + 1 < cols; ++c) {
        next.at(r, c) =
            heat2d_update(grid.at(r - 1, c), grid.at(r, c - 1), grid.at(r, c),
                          grid.at(r, c + 1), grid.at(r + 1, c));
      }
    }
    std::swap(grid, next);
  }
  return grid;
}

Grid2D heat2d_barrier(Grid2D grid, const Heat2dOptions& options) {
  const std::size_t rows = grid.rows();
  const std::size_t cols = grid.cols();
  MC_REQUIRE(rows >= 3 && cols >= 3, "need at least one interior cell");
  MC_REQUIRE(options.num_threads >= 1, "need at least one thread");

  const std::size_t interior = rows - 2;
  const std::size_t strips = std::min(options.num_threads, interior);
  CentralBarrier barrier(strips);
  Grid2D next = grid;  // shared double buffer
  Grid2D* current = &grid;
  Grid2D* scratch = &next;

  multithreaded_for(
      std::size_t{0}, strips, std::size_t{1},
      [&](std::size_t s) {
        const std::size_t begin = 1 + s * interior / strips;
        const std::size_t end = 1 + (s + 1) * interior / strips;
        for (std::size_t t = 1; t <= options.steps; ++t) {
          if (options.strip_hook) options.strip_hook(s, t);
          for (std::size_t r = begin; r < end; ++r) {
            for (std::size_t c = 1; c + 1 < cols; ++c) {
              scratch->at(r, c) = heat2d_update(
                  current->at(r - 1, c), current->at(r, c - 1),
                  current->at(r, c), current->at(r, c + 1),
                  current->at(r + 1, c));
            }
          }
          barrier.Pass();  // everyone computed step t from `current`
          if (s == 0) std::swap(current, scratch);
          barrier.Pass();  // swap visible to all before next step
        }
      },
      Execution::kMultithreaded);

  return *current;
}

Grid2D heat2d_ragged(Grid2D grid, const Heat2dOptions& options) {
  return heat2d_ragged_with<Counter>(std::move(grid), options);
}

}  // namespace monotonic
