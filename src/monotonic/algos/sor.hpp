// sor.hpp — red-black successive over-relaxation on counters.
//
// A second physical-simulation workload (§5.1: boundary exchange occurs
// "in most multithreaded simulations of physical systems").  Solves the
// Laplace equation on a rectangular grid with fixed boundary values by
// red-black SOR: each iteration updates the "red" cells ((r+c) even)
// from their black neighbours in place, then the black cells from red.
//
// The counter protocol here is *simpler* than heat1d's 2t-1/2t scheme,
// and deliberately so: within a half-sweep, red writes touch only red
// cells and read only black cells, so a strip may overlap freely with
// its neighbours *inside* a half-sweep — the only dependency is that
// both neighbours have finished the *previous* half-sweep.  One counter
// per strip, value = half-sweeps completed, one wait per neighbour per
// half-sweep.  (Contrast heat1d, whose Jacobi update writes the same
// cells it exposes, needing the two-phase read/write handshake.)
//
// All variants are bit-identical: red-black updates are order-
// independent within a half-sweep.
#pragma once

#include <cstddef>
#include <functional>

#include "monotonic/algos/heat2d.hpp"  // Grid2D
#include "monotonic/core/counter.hpp"
#include "monotonic/core/counter_concept.hpp"
#include "monotonic/patterns/ragged_barrier.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/sync/barrier.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {

struct SorOptions {
  std::size_t iterations = 100;
  std::size_t num_threads = 4;
  double omega = 1.5;  ///< relaxation factor in (0, 2)
  /// Optional stall per (strip, half_sweep) for imbalance experiments.
  std::function<void(std::size_t s, std::size_t half_sweep)> strip_hook;
};

/// Sequential reference.
Grid2D sor_sequential(Grid2D grid, const SorOptions& options);

/// Strip threads + global barrier per half-sweep (baseline).
Grid2D sor_barrier(Grid2D grid, const SorOptions& options);

/// Strip threads + one counter per strip.
Grid2D sor_ragged(Grid2D grid, const SorOptions& options);

/// Sum of |residual| over interior cells — convergence diagnostic.
double sor_residual(const Grid2D& grid);

namespace detail {

/// Updates the cells of `colour` (0 = red, 1 = black) in rows
/// [row_begin, row_end), in place.  Shared by every variant so
/// equivalence is exact.
void sor_half_sweep(Grid2D& grid, std::size_t row_begin, std::size_t row_end,
                    std::size_t colour, double omega);

}  // namespace detail

/// sor_ragged generalized over the counter implementation.
template <CounterLike C>
Grid2D sor_ragged_with(Grid2D grid, const SorOptions& options) {
  const std::size_t rows = grid.rows();
  MC_REQUIRE(rows >= 3 && grid.cols() >= 3, "need interior cells");
  MC_REQUIRE(options.num_threads >= 1, "need at least one thread");

  const std::size_t interior = rows - 2;
  const std::size_t strips = std::min(options.num_threads, interior);
  RaggedBarrier<C> sync(strips);

  multithreaded_for(
      std::size_t{0}, strips, std::size_t{1},
      [&](std::size_t s) {
        const std::size_t begin = 1 + s * interior / strips;
        const std::size_t end = 1 + (s + 1) * interior / strips;
        const std::size_t half_sweeps = 2 * options.iterations;
        for (std::size_t h = 1; h <= half_sweeps; ++h) {
          if (options.strip_hook) options.strip_hook(s, h);
          // Neighbours must have completed half-sweep h-1: their halo
          // rows then carry the opposite colour's final values, and
          // their concurrent writes in half-sweep h touch only the
          // colour we are not reading.
          if (s > 0) sync.wait_for(s - 1, h - 1);
          if (s + 1 < strips) sync.wait_for(s + 1, h - 1);
          detail::sor_half_sweep(grid, begin, end, (h - 1) % 2,
                                 options.omega);
          sync.arrive(s);
        }
      },
      Execution::kMultithreaded);

  return grid;
}

}  // namespace monotonic
