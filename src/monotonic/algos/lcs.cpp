#include "monotonic/algos/lcs.hpp"

#include <algorithm>
#include <vector>

#include "monotonic/patterns/wavefront.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/support/rng.hpp"

namespace monotonic {

namespace {

/// Shared cell rule over a (m+1) x (n+1) table with a zero border.
class LcsTable {
 public:
  LcsTable(std::string_view a, std::string_view b)
      : a_(a), b_(b), cols_(b.size() + 1),
        cells_((a.size() + 1) * (b.size() + 1), 0) {}

  void compute_cell(std::size_t i, std::size_t j) {
    // 1-based over the DP table; row/col 0 stay zero.
    std::uint32_t& cell = cells_[i * cols_ + j];
    if (a_[i - 1] == b_[j - 1]) {
      cell = cells_[(i - 1) * cols_ + (j - 1)] + 1;
    } else {
      cell = std::max(cells_[(i - 1) * cols_ + j], cells_[i * cols_ + j - 1]);
    }
  }

  std::uint32_t result() const { return cells_.back(); }

 private:
  std::string_view a_;
  std::string_view b_;
  std::size_t cols_;
  std::vector<std::uint32_t> cells_;
};

}  // namespace

std::size_t lcs_sequential(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) return 0;
  LcsTable table(a, b);
  for (std::size_t i = 1; i <= a.size(); ++i) {
    for (std::size_t j = 1; j <= b.size(); ++j) table.compute_cell(i, j);
  }
  return table.result();
}

std::size_t lcs_wavefront(std::string_view a, std::string_view b,
                          std::size_t num_threads, std::size_t block_rows,
                          std::size_t block_cols) {
  MC_REQUIRE(block_rows >= 1 && block_cols >= 1, "tile must be nonempty");
  if (a.empty() || b.empty()) return 0;

  LcsTable table(a, b);
  const std::size_t tile_rows = (a.size() + block_rows - 1) / block_rows;
  const std::size_t tile_cols = (b.size() + block_cols - 1) / block_cols;

  wavefront_rows(tile_rows, tile_cols, num_threads,
                 [&](std::size_t tr, std::size_t tc) {
                   const std::size_t i_end =
                       std::min((tr + 1) * block_rows, a.size());
                   const std::size_t j_end =
                       std::min((tc + 1) * block_cols, b.size());
                   for (std::size_t i = tr * block_rows + 1; i <= i_end; ++i) {
                     for (std::size_t j = tc * block_cols + 1; j <= j_end;
                          ++j) {
                       table.compute_cell(i, j);
                     }
                   }
                 });

  return table.result();
}

std::string random_string(std::size_t n, std::size_t alphabet,
                          std::uint64_t seed) {
  MC_REQUIRE(alphabet >= 1 && alphabet <= 26, "alphabet in [1, 26]");
  Xoshiro256 rng(seed);
  std::string s(n, 'a');
  for (auto& c : s) {
    c = static_cast<char>('a' + rng.uniform(0, alphabet - 1));
  }
  return s;
}

}  // namespace monotonic
