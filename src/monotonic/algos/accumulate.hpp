// accumulate.hpp — §5.2's accumulation of concurrently-computed
// subresults, with and without sequential ordering.
//
// The paper's two example Accumulate operations are both
// non-associative — appending to a linked list and floating-point
// addition — so the lock version "may produce different results on
// repeated executions" while the counter version is deterministic and
// equal to sequential execution.  These functions make that claim
// directly testable.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "monotonic/core/counter.hpp"
#include "monotonic/core/counter_concept.hpp"
#include "monotonic/patterns/sequencer.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/sync/lock.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {

struct AccumulateOptions {
  /// Worker threads; each handles a contiguous block of subresults.
  /// (The paper spawns one thread per subresult; pass num_threads == n
  /// for that exact shape.)
  std::size_t num_threads = 4;
  /// Optional artificial work performed while computing subresult i,
  /// to vary arrival order run to run.
  std::function<void(std::size_t i)> compute_hook;
};

/// Sequential reference: left-to-right sum.
double sum_sequential(const std::vector<double>& values);

/// §5.2 program 1: lock-guarded accumulation.  Mutual exclusion only —
/// the addition order is the (nondeterministic) arrival order.
double sum_lock(const std::vector<double>& values,
                const AccumulateOptions& options);

/// §5.2 program 2: counter-sequenced accumulation.  Mutual exclusion
/// plus sequential order; always equals sum_sequential.
double sum_ordered(const std::vector<double>& values,
                   const AccumulateOptions& options);

/// Lock-guarded list append: result is a permutation of 0..n-1 in
/// arrival order.
std::vector<std::uint64_t> append_lock(std::size_t n,
                                       const AccumulateOptions& options);

/// Counter-sequenced list append: result is always 0..n-1 in order.
std::vector<std::uint64_t> append_ordered(std::size_t n,
                                          const AccumulateOptions& options);

/// sum_ordered generalized over the counter implementation (E10).
template <CounterLike C>
double sum_ordered_with(const std::vector<double>& values,
                        const AccumulateOptions& options) {
  MC_REQUIRE(options.num_threads >= 1, "need at least one thread");
  const std::size_t n = values.size();
  const std::size_t threads = std::max<std::size_t>(
      1, std::min(options.num_threads, n == 0 ? 1 : n));

  double result = 0.0;
  Sequencer<C> seq;

  multithreaded_for(
      std::size_t{0}, threads, std::size_t{1},
      [&](std::size_t t) {
        const std::size_t begin = t * n / threads;
        const std::size_t end = (t + 1) * n / threads;
        for (std::size_t i = begin; i < end; ++i) {
          if (options.compute_hook) options.compute_hook(i);
          const double subresult = values[i];
          // §5.2: "resultCount.Check(i); Accumulate(...);
          // resultCount.Increment(1);" — the i-th accumulation waits
          // for accumulations 0..i-1 regardless of which thread runs it.
          seq.run_in_order(i, [&] { result += subresult; });
        }
      },
      Execution::kMultithreaded);

  return result;
}

/// Returns values whose sum is order-sensitive in IEEE double
/// arithmetic (mixed magnitudes), deterministic in the seed.
std::vector<double> order_sensitive_values(std::size_t n,
                                           std::uint64_t seed = 42);

}  // namespace monotonic
