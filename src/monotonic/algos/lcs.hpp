// lcs.hpp — longest common subsequence via the counter wavefront.
//
// A second dataflow workload (beyond §4's Floyd-Warshall) exercising
// wavefront_rows: the LCS dynamic program's cell (i, j) depends on
// (i-1, j), (i, j-1), (i-1, j-1) — the canonical wavefront.  The grid
// is blocked so each counter operation covers a tile of work, showing
// how counter granularity is tuned exactly like §5.3's blockSize.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace monotonic {

/// Reference row-sweep LCS length.
std::size_t lcs_sequential(std::string_view a, std::string_view b);

/// Blocked wavefront LCS length on counters; bit-identical to
/// lcs_sequential for every thread count and tile shape (§6
/// determinism).  Tiles are block_rows × block_cols cells.
std::size_t lcs_wavefront(std::string_view a, std::string_view b,
                          std::size_t num_threads, std::size_t block_rows = 32,
                          std::size_t block_cols = 32);

/// Deterministic random string over an alphabet of `alphabet` symbols.
std::string random_string(std::size_t n, std::size_t alphabet,
                          std::uint64_t seed);

}  // namespace monotonic
