#include "monotonic/algos/graph.hpp"

#include "monotonic/support/rng.hpp"

namespace monotonic {

SquareMatrix random_graph(std::size_t n, const GraphOptions& options) {
  MC_REQUIRE(n >= 1, "graph must have at least one vertex");
  MC_REQUIRE(options.min_weight <= options.max_weight, "empty weight range");
  MC_REQUIRE(options.min_weight >= 0,
             "set allow_negative instead of negative min_weight");

  SquareMatrix edges(n, kInfinity);
  Xoshiro256 rng(options.seed);

  // Vertex potentials for negative-edge generation: reweighting
  // w'(u,v) = w(u,v) + h(u) - h(v) preserves shortest paths and, with
  // w >= 0, guarantees no negative cycles (sum of potentials telescopes
  // to zero around any cycle).
  std::vector<weight_t> potential(n, 0);
  if (options.allow_negative) {
    for (auto& h : potential) {
      h = static_cast<weight_t>(rng.uniform(0, 20));
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) {
        edges.at(i, j) = 0;  // §4.1: self-edge weight is required to be zero
        continue;
      }
      if (rng.uniform01() >= options.edge_probability) continue;
      const auto base = static_cast<weight_t>(rng.uniform(
          static_cast<std::uint64_t>(options.min_weight),
          static_cast<std::uint64_t>(options.max_weight)));
      edges.at(i, j) = base + potential[i] - potential[j];
    }
  }
  return edges;
}

SquareMatrix figure1_edges() {
  SquareMatrix m(3, kInfinity);
  // Figure 1 edge matrix:
  //   0:  0   1   2       (row 0: V0->V0=0, V0->V1=1, V0->V2=2)
  //   1:  4   0  ∞
  //   2:  1  -3   0
  m.at(0, 0) = 0;
  m.at(0, 1) = 1;
  m.at(0, 2) = 2;
  m.at(1, 0) = 4;
  m.at(1, 1) = 0;
  m.at(1, 2) = kInfinity;
  m.at(2, 0) = 1;
  m.at(2, 1) = -3;
  m.at(2, 2) = 0;
  return m;
}

SquareMatrix figure1_paths() {
  SquareMatrix m(3, kInfinity);
  // Figure 1 path matrix:
  //   0:  0  -1   2
  //   1:  4   0   6
  //   2:  1  -3   0
  m.at(0, 0) = 0;
  m.at(0, 1) = -1;
  m.at(0, 2) = 2;
  m.at(1, 0) = 4;
  m.at(1, 1) = 0;
  m.at(1, 2) = 6;
  m.at(2, 0) = 1;
  m.at(2, 1) = -3;
  m.at(2, 2) = 0;
  return m;
}

}  // namespace monotonic
