// heat1d.hpp — §5.1's time-stepped 1-D simulation (heat along a rod).
//
//   "The state of internal cell i at time t is a function of the states
//    of cells i-1, i, and i+1 at time t-1.  The states of the leftmost
//    and rightmost cells remain constant over time."
//
// Three implementations compute bit-identical results:
//
//   heat_sequential — double-buffered (Jacobi) reference.
//   heat_barrier    — one thread per interior cell; two full-barrier
//                     passes per step (§5.1's first program).
//   heat_ragged     — one thread per interior cell; pairwise neighbour
//                     sync through a RaggedBarrier (§5.1's second
//                     program).  c[i] >= 2t-1 means cell i has read both
//                     neighbours in step t; c[i] >= 2t means cell i has
//                     completed step t.
//
// `cell_hook(i, t)` injects artificial per-cell load for the imbalance
// experiments (E2): with a barrier every cell waits for the slowest
// cell every step; with the ragged barrier the delay only ripples to
// neighbours.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "monotonic/core/counter.hpp"
#include "monotonic/core/counter_concept.hpp"
#include "monotonic/patterns/ragged_barrier.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/sync/barrier.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {

/// The cell update rule, shared by all implementations so equivalence
/// is exact: explicit heat diffusion with conduction factor 1/4.
constexpr double heat_update(double left, double centre,
                             double right) noexcept {
  return centre + 0.25 * (left - 2.0 * centre + right);
}

/// Structural measurements filled by the multithreaded variants when
/// HeatOptions::telemetry is set (experiment E2.c).
struct HeatTelemetry {
  std::uint64_t sync_objects = 0;     ///< barrier: 1; ragged: N counters
  std::uint64_t suspensions = 0;      ///< threads that actually slept
  std::uint64_t wakeup_broadcasts = 0;///< condvar notify_all calls
  std::uint64_t max_live_levels = 0;  ///< max wait levels per counter
};

struct HeatOptions {
  std::size_t steps = 100;
  /// Optional stall for cell `i` at time step `t` (interior cells only).
  std::function<void(std::size_t i, std::size_t t)> cell_hook;
  /// Optional out-param for structural measurements.
  HeatTelemetry* telemetry = nullptr;
};

/// Reference implementation (double-buffered sweep).
std::vector<double> heat_sequential(std::vector<double> state,
                                    const HeatOptions& options);

/// §5.1 program 1: thread per interior cell, full barrier twice a step.
std::vector<double> heat_barrier(std::vector<double> state,
                                 const HeatOptions& options);

/// §5.1 program 2: thread per interior cell, pairwise counter sync.
std::vector<double> heat_ragged(std::vector<double> state,
                                const HeatOptions& options);

/// heat_ragged generalized over the counter implementation (E10).
template <CounterLike C>
std::vector<double> heat_ragged_with(std::vector<double> state,
                                     const HeatOptions& options) {
  const std::size_t n = state.size();
  MC_REQUIRE(n >= 3, "need at least one interior cell");
  const std::size_t steps = options.steps;

  RaggedBarrier<C> sync(n);
  // Boundary cells never change: satisfy every future dependency on
  // them up front (§5.1: c[0].Increment(2*numSteps); likewise c[N-1]).
  sync.preload(0, 2 * steps);
  sync.preload(n - 1, 2 * steps);

  multithreaded_for(
      std::size_t{1}, n - 1, std::size_t{1},
      [&](std::size_t i) {
        double my_state = state[i];
        for (std::size_t t = 1; t <= steps; ++t) {
          if (options.cell_hook) options.cell_hook(i, t);
          // Neighbours have completed step t-1: their states are final.
          sync.wait_for(i - 1, 2 * t - 2);
          const double l_state = state[i - 1];
          sync.wait_for(i + 1, 2 * t - 2);
          const double r_state = state[i + 1];
          sync.arrive(i);  // value 2t-1: finished reading neighbours
          my_state = heat_update(l_state, my_state, r_state);
          // Neighbours have finished reading: safe to overwrite.
          sync.wait_for(i - 1, 2 * t - 1);
          sync.wait_for(i + 1, 2 * t - 1);
          state[i] = my_state;
          sync.arrive(i);  // value 2t: completed step t
        }
      },
      Execution::kMultithreaded);

  if (options.telemetry != nullptr) {
    if constexpr (requires(const C& c) { c.stats(); }) {
      const auto s = sync.aggregate_stats();
      options.telemetry->sync_objects = n;
      options.telemetry->suspensions = s.suspensions;
      options.telemetry->wakeup_broadcasts = s.notifies;
      options.telemetry->max_live_levels = s.max_live_nodes;
    }
  }
  return state;
}

}  // namespace monotonic
