#include "monotonic/algos/floyd_warshall.hpp"

#include <vector>

namespace monotonic {

SquareMatrix fw_sequential(SquareMatrix edges) {
  const std::size_t n = edges.size();
  SquareMatrix path = std::move(edges);
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const weight_t candidate = path_add(path.at(i, k), path.at(k, j));
        if (candidate < path.at(i, j)) path.at(i, j) = candidate;
      }
    }
  }
  return path;
}

SquareMatrix fw_barrier(SquareMatrix edges, const FwOptions& options) {
  const std::size_t n = edges.size();
  MC_REQUIRE(options.num_threads >= 1, "need at least one thread");
  const std::size_t threads = std::min(options.num_threads, n);

  SquareMatrix path = std::move(edges);
  CentralBarrier barrier(threads);

  multithreaded_for(
      std::size_t{0}, threads, std::size_t{1},
      [&](std::size_t t) {
        const std::size_t begin = detail::fw_block_begin(t, n, threads);
        const std::size_t end = detail::fw_block_end(t, n, threads);
        for (std::size_t k = 0; k < n; ++k) {
          if (options.iteration_hook) options.iteration_hook(t, k);
          for (std::size_t i = begin; i < end; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
              // Safe to read path[k][j] directly: "the algorithm will
              // never assign to path[i][k] or path[k][j] during
              // iteration k" (§4.3), and the barrier keeps every thread
              // in the same iteration.
              const weight_t candidate =
                  path_add(path.at(i, k), path.at(k, j));
              if (candidate < path.at(i, j)) path.at(i, j) = candidate;
            }
          }
          barrier.Pass();
        }
      },
      Execution::kMultithreaded);

  return path;
}

SquareMatrix fw_condition_array(SquareMatrix edges, const FwOptions& options) {
  const std::size_t n = edges.size();
  MC_REQUIRE(options.num_threads >= 1, "need at least one thread");
  const std::size_t threads = std::min(options.num_threads, n);

  SquareMatrix path = std::move(edges);
  // §4.4: "the most significant extra cost is allocation of N condition
  // variables.  N may be much larger than numThreads."  This is the
  // structural cost fw_counter removes.
  std::vector<Condition> k_done(n);
  SquareMatrix k_row(n, 0);
  for (std::size_t j = 0; j < n; ++j) k_row.at(0, j) = path.at(0, j);
  k_done[0].Set();

  multithreaded_for(
      std::size_t{0}, threads, std::size_t{1},
      [&](std::size_t t) {
        const std::size_t begin = detail::fw_block_begin(t, n, threads);
        const std::size_t end = detail::fw_block_end(t, n, threads);
        for (std::size_t k = 0; k < n; ++k) {
          if (options.iteration_hook) options.iteration_hook(t, k);
          k_done[k].Check();
          for (std::size_t i = begin; i < end; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
              const weight_t candidate =
                  path_add(path.at(i, k), k_row.at(k, j));
              if (candidate < path.at(i, j)) path.at(i, j) = candidate;
            }
            if (i == k + 1) {
              for (std::size_t j = 0; j < n; ++j) {
                k_row.at(k + 1, j) = path.at(k + 1, j);
              }
              k_done[k + 1].Set();
            }
          }
        }
      },
      Execution::kMultithreaded);

  return path;
}

SquareMatrix fw_counter(SquareMatrix edges, const FwOptions& options) {
  Counter counter;
  return fw_counter_with(std::move(edges), options, counter);
}

}  // namespace monotonic
