#include "monotonic/algos/heat1d.hpp"

namespace monotonic {

std::vector<double> heat_sequential(std::vector<double> state,
                                    const HeatOptions& options) {
  const std::size_t n = state.size();
  MC_REQUIRE(n >= 3, "need at least one interior cell");
  std::vector<double> next = state;
  for (std::size_t t = 1; t <= options.steps; ++t) {
    for (std::size_t i = 1; i + 1 < n; ++i) {
      if (options.cell_hook) options.cell_hook(i, t);
      next[i] = heat_update(state[i - 1], state[i], state[i + 1]);
    }
    state.swap(next);
  }
  return state;
}

std::vector<double> heat_barrier(std::vector<double> state,
                                 const HeatOptions& options) {
  const std::size_t n = state.size();
  MC_REQUIRE(n >= 3, "need at least one interior cell");
  // One party per interior cell.  (The paper's listing constructs
  // Barrier b(N) while spawning N-2 threads — with N parties the
  // program would hang; the intended party count is the thread count.)
  CentralBarrier barrier(n - 2);

  multithreaded_for(
      std::size_t{1}, n - 1, std::size_t{1},
      [&](std::size_t i) {
        double l_state, r_state;
        double my_state = state[i];
        for (std::size_t t = 1; t <= options.steps; ++t) {
          if (options.cell_hook) options.cell_hook(i, t);
          barrier.Pass();  // everyone finished writing step t-1
          l_state = state[i - 1];
          r_state = state[i + 1];
          barrier.Pass();  // everyone finished reading
          my_state = heat_update(l_state, my_state, r_state);
          state[i] = my_state;
        }
      },
      Execution::kMultithreaded);

  if (options.telemetry != nullptr) {
    options.telemetry->sync_objects = 1;
    options.telemetry->suspensions = barrier.stat_suspensions();
    // One notify_all per round; every round broadcasts to all parties.
    options.telemetry->wakeup_broadcasts = barrier.stat_rounds();
    options.telemetry->max_live_levels = 0;  // barriers have one queue
  }
  return state;
}

std::vector<double> heat_ragged(std::vector<double> state,
                                const HeatOptions& options) {
  return heat_ragged_with<Counter>(std::move(state), options);
}

}  // namespace monotonic
