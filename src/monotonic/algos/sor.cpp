#include "monotonic/algos/sor.hpp"

#include <algorithm>
#include <cmath>

namespace monotonic {

namespace detail {

void sor_half_sweep(Grid2D& grid, std::size_t row_begin, std::size_t row_end,
                    std::size_t colour, double omega) {
  const std::size_t cols = grid.cols();
  for (std::size_t r = row_begin; r < row_end; ++r) {
    // First interior column of this colour on row r; interior columns
    // are 1..cols-2.
    std::size_t c = 1 + ((r + 1 + colour) % 2);
    for (; c + 1 < cols; c += 2) {
      const double neighbours = grid.at(r - 1, c) + grid.at(r + 1, c) +
                                grid.at(r, c - 1) + grid.at(r, c + 1);
      grid.at(r, c) =
          (1.0 - omega) * grid.at(r, c) + omega * 0.25 * neighbours;
    }
  }
}

}  // namespace detail

Grid2D sor_sequential(Grid2D grid, const SorOptions& options) {
  const std::size_t rows = grid.rows();
  MC_REQUIRE(rows >= 3 && grid.cols() >= 3, "need interior cells");
  for (std::size_t h = 1; h <= 2 * options.iterations; ++h) {
    if (options.strip_hook) options.strip_hook(0, h);
    detail::sor_half_sweep(grid, 1, rows - 1, (h - 1) % 2, options.omega);
  }
  return grid;
}

Grid2D sor_barrier(Grid2D grid, const SorOptions& options) {
  const std::size_t rows = grid.rows();
  MC_REQUIRE(rows >= 3 && grid.cols() >= 3, "need interior cells");
  MC_REQUIRE(options.num_threads >= 1, "need at least one thread");

  const std::size_t interior = rows - 2;
  const std::size_t strips = std::min(options.num_threads, interior);
  CentralBarrier barrier(strips);

  multithreaded_for(
      std::size_t{0}, strips, std::size_t{1},
      [&](std::size_t s) {
        const std::size_t begin = 1 + s * interior / strips;
        const std::size_t end = 1 + (s + 1) * interior / strips;
        for (std::size_t h = 1; h <= 2 * options.iterations; ++h) {
          if (options.strip_hook) options.strip_hook(s, h);
          detail::sor_half_sweep(grid, begin, end, (h - 1) % 2,
                                 options.omega);
          barrier.Pass();  // global rendezvous per half-sweep
        }
      },
      Execution::kMultithreaded);

  return grid;
}

Grid2D sor_ragged(Grid2D grid, const SorOptions& options) {
  return sor_ragged_with<Counter>(std::move(grid), options);
}

double sor_residual(const Grid2D& grid) {
  double total = 0.0;
  for (std::size_t r = 1; r + 1 < grid.rows(); ++r) {
    for (std::size_t c = 1; c + 1 < grid.cols(); ++c) {
      const double neighbours = grid.at(r - 1, c) + grid.at(r + 1, c) +
                                grid.at(r, c - 1) + grid.at(r, c + 1);
      total += std::abs(0.25 * neighbours - grid.at(r, c));
    }
  }
  return total;
}

}  // namespace monotonic
