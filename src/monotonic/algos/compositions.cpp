#include "monotonic/algos/compositions.hpp"

#include <algorithm>

#include "monotonic/patterns/pipeline.hpp"
#include "monotonic/support/assert.hpp"

namespace monotonic {

namespace {

/// Order-sensitive combination of an accumulated checksum and an item.
constexpr std::uint64_t fold(std::uint64_t acc, std::uint64_t item) noexcept {
  return (acc * 0x9e3779b97f4a7c15ull) ^ (item + 0x7f4a7c15ull);
}

/// The item derived from upstream item `x` by prepending part `p`.
constexpr std::uint64_t derive(std::uint64_t p, std::uint64_t x) noexcept {
  return (x * 31) + p * 0x100000001b3ull;
}

std::vector<std::uint64_t> stage_counts(std::size_t max_size,
                                        std::size_t max_part) {
  std::vector<std::uint64_t> counts(max_size + 1, 0);
  counts[0] = 1;
  for (std::size_t k = 1; k <= max_size; ++k) {
    for (std::size_t p = 1; p <= std::min(k, max_part); ++p) {
      counts[k] += counts[k - p];
    }
  }
  return counts;
}

}  // namespace

CompositionResult compositions_sequential(std::size_t max_size,
                                          std::size_t max_part) {
  MC_REQUIRE(max_part >= 1, "parts must be at least 1");
  const auto counts = stage_counts(max_size, max_part);

  std::vector<std::vector<std::uint64_t>> items(max_size + 1);
  items[0] = {1};  // the empty composition's seed item
  for (std::size_t k = 1; k <= max_size; ++k) {
    items[k].reserve(counts[k]);
    // Deterministic emission order: part p ascending, upstream index
    // ascending — the same order the pipeline stage uses.
    for (std::size_t p = 1; p <= std::min(k, max_part); ++p) {
      for (std::uint64_t x : items[k - p]) items[k].push_back(derive(p, x));
    }
  }

  CompositionResult result;
  result.counts = counts;
  result.checksums.resize(max_size + 1, 0);
  for (std::size_t k = 0; k <= max_size; ++k) {
    std::uint64_t sum = 0;
    for (std::uint64_t x : items[k]) sum = fold(sum, x);
    result.checksums[k] = sum;
  }
  return result;
}

CompositionResult compositions_pipeline(std::size_t max_size,
                                        std::size_t max_part,
                                        std::size_t block_size,
                                        Execution policy) {
  MC_REQUIRE(max_part >= 1, "parts must be at least 1");
  const auto counts = stage_counts(max_size, max_part);

  Pipeline<std::uint64_t> pipeline;
  for (std::size_t k = 0; k <= max_size; ++k) {
    pipeline.add_stage(
        counts[k],
        [k, max_part](Pipeline<std::uint64_t>::Context& ctx) {
          if (k == 0) {
            ctx.emit(1);
            return;
          }
          // Stage k streams every upstream stage k-p: each read blocks
          // only until the producer has published that item, so stages
          // overlap — the chained broadcast §5.3 describes.
          for (std::size_t p = 1; p <= std::min(k, max_part); ++p) {
            const std::size_t upstream = k - p;
            const std::size_t n = ctx.count(upstream);
            for (std::size_t i = 0; i < n; ++i) {
              ctx.emit(derive(p, ctx.read(upstream, i)));
            }
          }
        },
        block_size);
  }
  pipeline.run(policy);

  CompositionResult result;
  result.counts = counts;
  result.checksums.resize(max_size + 1, 0);
  for (std::size_t k = 0; k <= max_size; ++k) {
    std::uint64_t sum = 0;
    for (std::uint64_t x : pipeline.output(k)) sum = fold(sum, x);
    result.checksums[k] = sum;
  }
  return result;
}

}  // namespace monotonic
