#include "monotonic/algos/accumulate.hpp"

#include <algorithm>

#include "monotonic/support/rng.hpp"

namespace monotonic {

double sum_sequential(const std::vector<double>& values) {
  double result = 0.0;
  for (double v : values) result += v;
  return result;
}

double sum_lock(const std::vector<double>& values,
                const AccumulateOptions& options) {
  MC_REQUIRE(options.num_threads >= 1, "need at least one thread");
  const std::size_t n = values.size();
  const std::size_t threads = std::max<std::size_t>(
      1, std::min(options.num_threads, n == 0 ? 1 : n));

  double result = 0.0;
  Lock result_lock;

  multithreaded_for(
      std::size_t{0}, threads, std::size_t{1},
      [&](std::size_t t) {
        const std::size_t begin = t * n / threads;
        const std::size_t end = (t + 1) * n / threads;
        for (std::size_t i = begin; i < end; ++i) {
          if (options.compute_hook) options.compute_hook(i);
          const double subresult = values[i];
          Lock::Holder hold(result_lock);
          result += subresult;
        }
      },
      Execution::kMultithreaded);

  return result;
}

double sum_ordered(const std::vector<double>& values,
                   const AccumulateOptions& options) {
  return sum_ordered_with<Counter>(values, options);
}

namespace {

template <typename Guarded>
std::vector<std::uint64_t> append_impl(std::size_t n,
                                       const AccumulateOptions& options,
                                       Guarded&& guarded_append) {
  MC_REQUIRE(options.num_threads >= 1, "need at least one thread");
  const std::size_t threads = std::max<std::size_t>(
      1, std::min(options.num_threads, n == 0 ? 1 : n));

  multithreaded_for(
      std::size_t{0}, threads, std::size_t{1},
      [&](std::size_t t) {
        const std::size_t begin = t * n / threads;
        const std::size_t end = (t + 1) * n / threads;
        for (std::size_t i = begin; i < end; ++i) {
          if (options.compute_hook) options.compute_hook(i);
          guarded_append(i);
        }
      },
      Execution::kMultithreaded);
  return {};
}

}  // namespace

std::vector<std::uint64_t> append_lock(std::size_t n,
                                       const AccumulateOptions& options) {
  std::vector<std::uint64_t> result;
  result.reserve(n);
  Lock result_lock;
  append_impl(n, options, [&](std::size_t i) {
    Lock::Holder hold(result_lock);
    result.push_back(i);
  });
  return result;
}

std::vector<std::uint64_t> append_ordered(std::size_t n,
                                          const AccumulateOptions& options) {
  std::vector<std::uint64_t> result;
  result.reserve(n);
  Sequencer<Counter> seq;
  append_impl(n, options, [&](std::size_t i) {
    seq.run_in_order(i, [&] { result.push_back(i); });
  });
  return result;
}

std::vector<double> order_sensitive_values(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Alternate huge and tiny magnitudes with mixed signs: any change
    // to the addition order changes which low bits are absorbed.
    const double magnitude = (i % 2 == 0) ? 1e16 : 1.0;
    const double sign = (rng() & 1) ? 1.0 : -1.0;
    values[i] = sign * magnitude * (1.0 + rng.uniform01());
  }
  return values;
}

}  // namespace monotonic
