// floyd_warshall.hpp — the paper's §4 worked example, all four variants.
//
//   §4.2  fw_sequential       — the plain triple loop.
//   §4.3  fw_barrier          — numThreads row-blocks, one N-way barrier
//                               pass per iteration k.
//   §4.4  fw_condition_array  — each thread proceeds as soon as row k is
//                               ready; N Condition objects + kRow copies.
//   §4.5  fw_counter          — identical schedule to §4.4 with ONE
//                               counter replacing the N conditions.
//
// All variants take the edge matrix by value and return the path
// matrix, so inputs can be reused across variants and runs.  The
// multithreaded variants are deterministic (§6) and always produce
// fw_sequential's result — the equivalence tests exercise exactly that.
//
// `iteration_hook(t, k)` is called by thread t at the top of iteration
// k; benches inject artificial load imbalance through it (the situation
// where §4.4/§4.5's "faster threads can execute many iterations ahead"
// pays off).
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>

#include "monotonic/algos/graph.hpp"
#include "monotonic/core/counter.hpp"
#include "monotonic/core/counter_concept.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/sync/barrier.hpp"
#include "monotonic/sync/event.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {

struct FwOptions {
  std::size_t num_threads = 2;
  /// Optional stall injected at the top of each (thread, iteration).
  std::function<void(std::size_t t, std::size_t k)> iteration_hook;
};

/// §4.2 — sequential Floyd-Warshall.
SquareMatrix fw_sequential(SquareMatrix edges);

/// §4.3 — multithreaded with one N-way barrier per iteration.
SquareMatrix fw_barrier(SquareMatrix edges, const FwOptions& options);

/// §4.4 — multithreaded with an array of N Condition objects.
SquareMatrix fw_condition_array(SquareMatrix edges, const FwOptions& options);

/// §4.5 — multithreaded with a single monotonic counter.  Returns the
/// path matrix; if `counter_out` is non-null the counter used is made
/// available for stats inspection after the run.
SquareMatrix fw_counter(SquareMatrix edges, const FwOptions& options);

namespace detail {

/// Row-block boundaries (§4.3: i in [t*N/T, (t+1)*N/T)).
constexpr std::size_t fw_block_begin(std::size_t t, std::size_t n,
                                     std::size_t threads) noexcept {
  return t * n / threads;
}
constexpr std::size_t fw_block_end(std::size_t t, std::size_t n,
                                   std::size_t threads) noexcept {
  return (t + 1) * n / threads;
}

}  // namespace detail

/// §4.5 generalized over the counter implementation (ablation E10).
/// `counter` must be freshly constructed (value zero).
template <CounterLike C>
SquareMatrix fw_counter_with(SquareMatrix edges, const FwOptions& options,
                             C& counter) {
  const std::size_t n = edges.size();
  MC_REQUIRE(options.num_threads >= 1, "need at least one thread");
  const std::size_t threads = std::min(options.num_threads, n);

  SquareMatrix path = std::move(edges);
  // kRow[k] is row k of `path` as of the end of iteration k-1; reading
  // from the copy (not from path) is what removes the §4.3 requirement
  // that no thread runs ahead.
  SquareMatrix k_row(n, 0);
  for (std::size_t j = 0; j < n; ++j) k_row.at(0, j) = path.at(0, j);

  multithreaded_for(
      std::size_t{0}, threads, std::size_t{1},
      [&](std::size_t t) {
        const std::size_t begin = detail::fw_block_begin(t, n, threads);
        const std::size_t end = detail::fw_block_end(t, n, threads);
        for (std::size_t k = 0; k < n; ++k) {
          if (options.iteration_hook) options.iteration_hook(t, k);
          counter.Check(k);  // row k is ready once value >= k
          for (std::size_t i = begin; i < end; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
              const weight_t candidate =
                  path_add(path.at(i, k), k_row.at(k, j));
              if (candidate < path.at(i, j)) path.at(i, j) = candidate;
            }
            if (i == k + 1) {
              // Row k+1 is final w.r.t. iteration k: snapshot it and
              // broadcast availability to every thread in one operation.
              for (std::size_t j = 0; j < n; ++j) {
                k_row.at(k + 1, j) = path.at(k + 1, j);
              }
              counter.Increment(1);
            }
          }
        }
      },
      Execution::kMultithreaded);

  return path;
}

}  // namespace monotonic
