// paraffins — the Paraffins Problem [9] on the broadcast pipeline
// (§5.3's motivating application).
//
//   ./build/examples/paraffins [max_carbons] [block]
//
// Enumerates all radicals up to the given size through one thread per
// size — each stage's array broadcast by a single counter to every
// larger stage — then counts alkane isomers by centroid decomposition
// and verifies the whole run against the sequential reference.

#include <cstdio>
#include <cstdlib>

#include "monotonic/algos/paraffins.hpp"
#include "monotonic/support/stopwatch.hpp"

using namespace monotonic;

int main(int argc, char** argv) {
  const std::size_t max_carbons =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 12;
  const std::size_t block = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
  if (block < 1) {
    std::fprintf(stderr, "usage: %s [max_carbons] [block>=1]\n", argv[0]);
    return 2;
  }

  std::printf("paraffins up to C%zu: %zu radical stages, block size %zu\n\n",
              max_carbons, max_carbons + 1, block);

  Stopwatch sw;
  const auto reference = paraffins_sequential(max_carbons);
  const double seq_ms = sw.lap().count() / 1e6;
  const auto result =
      paraffins_pipeline(max_carbons, block, Execution::kMultithreaded);
  const double pipe_ms = sw.lap().count() / 1e6;

  std::puts("  n     radicals      alkanes   (radicals: A000598, "
            "alkanes: A000602)");
  for (std::size_t n = 0; n <= max_carbons; ++n) {
    if (n == 0) {
      std::printf("%3zu %12llu            -\n", n,
                  static_cast<unsigned long long>(result.radicals[n]));
    } else {
      std::printf("%3zu %12llu %12llu\n", n,
                  static_cast<unsigned long long>(result.radicals[n]),
                  static_cast<unsigned long long>(result.alkanes[n]));
    }
  }

  const bool ok = result == reference;
  std::printf("\nsequential %.2f ms, pipeline %.2f ms, results %s\n", seq_ms,
              pipe_ms, ok ? "identical" : "DIFFER (bug!)");
  return ok ? 0 : 1;
}
