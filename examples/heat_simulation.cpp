// heat_simulation — §5.1's boundary-exchange simulation as a CLI tool.
//
//   ./build/examples/heat_simulation [cells] [steps] [variant]
//     cells    rod cells incl. fixed ends  (default 16)
//     steps    time steps                  (default 200)
//     variant  seq|barrier|ragged|all      (default all)
//
// One thread per interior cell.  Prints the final temperature profile,
// cross-checks the multithreaded variants against the sequential
// reference (bit-exact), and reports the synchronization telemetry.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "monotonic/algos/heat1d.hpp"
#include "monotonic/support/stopwatch.hpp"

using namespace monotonic;

namespace {

void print_profile(const std::vector<double>& state) {
  std::printf("  profile:");
  for (double v : state) std::printf(" %6.2f", v);
  std::puts("");
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t cells = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16;
  const std::size_t steps = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 200;
  const std::string variant = argc > 3 ? argv[3] : "all";
  if (cells < 3) {
    std::fprintf(stderr, "usage: %s [cells>=3] [steps] "
                         "[seq|barrier|ragged|all]\n",
                 argv[0]);
    return 2;
  }

  // A rod held at 0 on the left and 100 on the right.
  std::vector<double> rod(cells, 0.0);
  rod.back() = 100.0;

  std::printf("heat simulation: %zu cells, %zu steps, %zu threads\n", cells,
              steps, cells - 2);

  HeatOptions options{.steps = steps, .cell_hook = {}, .telemetry = nullptr};
  const auto expected = heat_sequential(rod, options);

  if (variant == "seq" || variant == "all") {
    Stopwatch sw;
    const auto result = heat_sequential(rod, options);
    std::printf("seq      %8.2f ms\n", sw.elapsed_ms());
    if (cells <= 24) print_profile(result);
  }
  if (variant == "barrier" || variant == "all") {
    HeatTelemetry telemetry;
    HeatOptions opts = options;
    opts.telemetry = &telemetry;
    Stopwatch sw;
    const auto result = heat_barrier(rod, opts);
    std::printf("barrier  %8.2f ms   %s   [%llu sync objects, "
                "%llu suspensions, %llu broadcasts]\n",
                sw.elapsed_ms(),
                result == expected ? "exact match" : "MISMATCH",
                static_cast<unsigned long long>(telemetry.sync_objects),
                static_cast<unsigned long long>(telemetry.suspensions),
                static_cast<unsigned long long>(telemetry.wakeup_broadcasts));
    if (result != expected) return 1;
  }
  if (variant == "ragged" || variant == "all") {
    HeatTelemetry telemetry;
    HeatOptions opts = options;
    opts.telemetry = &telemetry;
    Stopwatch sw;
    const auto result = heat_ragged(rod, opts);
    std::printf("ragged   %8.2f ms   %s   [%llu counters, "
                "%llu suspensions, %llu broadcasts, max %llu levels/counter]\n",
                sw.elapsed_ms(),
                result == expected ? "exact match" : "MISMATCH",
                static_cast<unsigned long long>(telemetry.sync_objects),
                static_cast<unsigned long long>(telemetry.suspensions),
                static_cast<unsigned long long>(telemetry.wakeup_broadcasts),
                static_cast<unsigned long long>(telemetry.max_live_levels));
    if (result != expected) return 1;
  }
  return 0;
}
