// wavefront_alignment — longest-common-subsequence via the counter
// wavefront (a 2-D dataflow built on §4's idea: one counter per row
// of tiles instead of a condition variable per tile).
//
//   ./build/examples/wavefront_alignment [len] [threads] [tile]
//
// Aligns two random sequences, comparing the sequential sweep to the
// counter wavefront, and verifying the lengths agree.

#include <cstdio>
#include <cstdlib>

#include "monotonic/algos/lcs.hpp"
#include "monotonic/support/stopwatch.hpp"

using namespace monotonic;

int main(int argc, char** argv) {
  const std::size_t len = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2000;
  const std::size_t threads = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
  const std::size_t tile = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 64;
  if (len < 1 || threads < 1 || tile < 1) {
    std::fprintf(stderr, "usage: %s [len] [threads] [tile]\n", argv[0]);
    return 2;
  }

  const auto a = random_string(len, 4, 101);
  const auto b = random_string(len, 4, 202);
  std::printf("LCS of two random length-%zu sequences (alphabet 4)\n", len);
  std::printf("tiles: %zux%zu cells, %zu threads owning tile-rows "
              "cyclically\n\n", tile, tile, threads);

  Stopwatch sw;
  const std::size_t seq = lcs_sequential(a, b);
  const double seq_ms = sw.lap().count() / 1e6;

  const std::size_t wave = lcs_wavefront(a, b, threads, tile, tile);
  const double wave_ms = sw.lap().count() / 1e6;

  std::printf("sequential sweep : LCS = %zu   (%.2f ms)\n", seq, seq_ms);
  std::printf("counter wavefront: LCS = %zu   (%.2f ms)\n", wave, wave_ms);
  std::printf("results %s\n", seq == wave ? "agree" : "DISAGREE (bug!)");
  return seq == wave ? 0 : 1;
}
