// task_scheduler — a build-system-shaped DAG on counter scheduling.
//
//   ./build/examples/task_scheduler [modules] [threads]
//
// Models a software build: each "module" has sources to compile (fan
// out), an archive step joining its objects, and executables linking
// several archives — a task DAG with fan-out, fan-in, and cross-module
// joins, all synchronized by one counter per task (patterns/task_graph).
// Prints the schedule as it happens and verifies every dependency was
// honoured.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include "monotonic/patterns/task_graph.hpp"
#include "monotonic/support/stopwatch.hpp"

using namespace monotonic;

namespace {

struct BuildLog {
  std::mutex m;
  std::vector<std::string> lines;
  void log(const std::string& line) {
    std::scoped_lock lock(m);
    lines.push_back(line);
  }
};

void busy_work(int us) {
  const auto end =
      std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  while (std::chrono::steady_clock::now() < end) {
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t modules =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  const std::size_t threads =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
  if (modules < 1 || threads < 1) {
    std::fprintf(stderr, "usage: %s [modules>=1] [threads>=1]\n", argv[0]);
    return 2;
  }
  constexpr std::size_t kSourcesPerModule = 3;

  TaskGraph<> graph;
  BuildLog log;
  std::vector<std::atomic<bool>> archived(modules);
  std::vector<TaskGraph<>::TaskId> archives;

  for (std::size_t m = 0; m < modules; ++m) {
    std::vector<TaskGraph<>::TaskId> objects;
    for (std::size_t s = 0; s < kSourcesPerModule; ++s) {
      objects.push_back(graph.add_task([&log, m, s] {
        busy_work(300);
        log.log("compile module" + std::to_string(m) + "/src" +
                std::to_string(s) + ".cpp");
      }));
    }
    archives.push_back(graph.add_task(
        [&log, &archived, m] {
          busy_work(150);
          archived[m].store(true);
          log.log("archive libmodule" + std::to_string(m) + ".a");
        },
        objects));
  }

  // Each executable links its own module plus module 0 (the "core"),
  // so archive 0 is broadcast to every link task — one counter, many
  // waiters (§5.3's shape inside a scheduler).
  std::atomic<int> links_ok{0};
  for (std::size_t m = 1; m < modules; ++m) {
    graph.add_task(
        [&, m] {
          busy_work(200);
          if (archived[0].load() && archived[m].load()) links_ok.fetch_add(1);
          log.log("link app" + std::to_string(m));
        },
        {archives[0], archives[m]});
  }

  std::printf("building %zu modules (%zu tasks) on %zu threads\n\n", modules,
              graph.size(), threads);
  Stopwatch sw;
  graph.run(threads);
  const double ms = sw.elapsed_ms();

  for (const auto& line : log.lines) std::printf("  %s\n", line.c_str());
  const bool ok =
      links_ok.load() == static_cast<int>(modules) - 1 &&
      log.lines.size() == graph.size();
  std::printf("\n%zu tasks in %.2f ms; all dependencies honoured: %s\n",
              graph.size(), ms, ok ? "yes" : "NO (bug!)");
  return ok ? 0 : 1;
}
