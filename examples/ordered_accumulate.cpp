// ordered_accumulate — §5.2's determinism demo as a CLI tool.
//
//   ./build/examples/ordered_accumulate [items] [threads] [runs]
//
// Sums order-sensitive floating-point values with (a) a lock (mutual
// exclusion only) and (b) a counter sequencer (mutual exclusion plus
// sequential order), `runs` times each, and reports how many distinct
// answers each strategy produced.  The counter column is always 1.

#include <cstdio>
#include <cstdlib>
#include <set>
#include <thread>

#include "monotonic/algos/accumulate.hpp"

using namespace monotonic;

int main(int argc, char** argv) {
  const std::size_t items = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 256;
  const std::size_t threads = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
  const int runs = argc > 3 ? std::atoi(argv[3]) : 25;
  if (items < 1 || threads < 1 || runs < 1) {
    std::fprintf(stderr, "usage: %s [items] [threads] [runs]\n", argv[0]);
    return 2;
  }

  std::printf("summing %zu order-sensitive doubles, %zu threads, %d runs\n",
              items, threads, runs);

  const auto values = order_sensitive_values(items);
  const double sequential = sum_sequential(values);
  std::printf("sequential reference: %.17g\n\n", sequential);

  AccumulateOptions options;
  options.num_threads = threads;
  options.compute_hook = [](std::size_t i) {
    if (i % 7 == 0) std::this_thread::yield();  // perturb schedules
  };

  std::set<double> lock_results, ordered_results;
  for (int run = 0; run < runs; ++run) {
    lock_results.insert(sum_lock(values, options));
    ordered_results.insert(sum_ordered(values, options));
  }

  std::printf("lock     (mutual exclusion only):   %zu distinct result(s)\n",
              lock_results.size());
  for (double r : lock_results) {
    std::printf("    %.17g%s\n", r, r == sequential ? "  == sequential" : "");
  }
  std::printf("counter  (exclusion + ordering):    %zu distinct result(s)\n",
              ordered_results.size());
  for (double r : ordered_results) {
    std::printf("    %.17g%s\n", r, r == sequential ? "  == sequential" : "");
  }

  const bool deterministic = ordered_results.size() == 1 &&
                             *ordered_results.begin() == sequential;
  std::printf("\ncounter version deterministic and sequential-equivalent: %s\n",
              deterministic ? "yes" : "NO (bug!)");
  return deterministic ? 0 : 1;
}
