// broadcast_pipeline — the Paraffins-shaped dataflow pipeline (§5.3's
// motivating application; see DESIGN.md §3 for the substitution).
//
//   ./build/examples/broadcast_pipeline [max_size] [max_part] [block]
//
// Stage k enumerates integer compositions of k from the outputs of
// stages k-1..k-max_part, every stage running as its own thread and
// every stage's output array broadcast to all downstream consumers
// through a single counter.  The run is verified against the
// sequential dynamic program.

#include <cstdio>
#include <cstdlib>

#include "monotonic/algos/compositions.hpp"
#include "monotonic/support/stopwatch.hpp"

using namespace monotonic;

int main(int argc, char** argv) {
  const std::size_t max_size =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16;
  const std::size_t max_part =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 3;
  const std::size_t block = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 8;
  if (max_part < 1 || block < 1) {
    std::fprintf(stderr, "usage: %s [max_size] [max_part>=1] [block>=1]\n",
                 argv[0]);
    return 2;
  }

  std::printf("composition pipeline: sizes 0..%zu, parts <= %zu, "
              "block size %zu, %zu stage threads\n",
              max_size, max_part, block, max_size + 1);

  Stopwatch sw;
  const auto reference = compositions_sequential(max_size, max_part);
  const double seq_ms = sw.lap().count() / 1e6;

  const auto pipelined =
      compositions_pipeline(max_size, max_part, block,
                            Execution::kMultithreaded);
  const double pipe_ms = sw.lap().count() / 1e6;

  std::puts("\n  k   compositions   checksum");
  for (std::size_t k = 0; k <= max_size; ++k) {
    std::printf("%3zu   %12llu   %016llx\n", k,
                static_cast<unsigned long long>(pipelined.counts[k]),
                static_cast<unsigned long long>(pipelined.checksums[k]));
  }

  const bool ok = pipelined == reference;
  std::printf("\nsequential %.2f ms, pipeline %.2f ms, results %s\n", seq_ms,
              pipe_ms, ok ? "identical" : "DIFFER (bug!)");
  return ok ? 0 : 1;
}
