// quickstart — the monotonic counter in five minutes.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Walks the §2 API (Increment / Check), the §5.3 writer/readers
// pattern, and the §6 determinism pitch, printing what happens.

#include <atomic>
#include <cstdio>
#include <vector>

#include "monotonic/core/counter.hpp"
#include "monotonic/threads/structured.hpp"

using monotonic::Counter;
using monotonic::counter_value_t;
using monotonic::multithreaded_block;

namespace {

// 1. The whole API: a value (starts at 0), Increment, Check.
//    There is no Decrement and no "read the value" — that is the point:
//    once Check(level) is enabled it stays enabled, so there is no race
//    to catch or miss a value (§2).
void basics() {
  std::puts("-- basics ---------------------------------------------------");
  Counter c;
  c.Increment(3);
  c.Check(2);  // 3 >= 2: returns immediately
  c.Check(3);
  std::puts("Increment(3); Check(2); Check(3): all passed");
}

// 2. One writer, three readers, ONE counter (§5.3).  Readers suspend in
//    Check until the writer's Increment broadcasts availability.  A
//    reader at item 10 and a reader at item 90 wait on different levels
//    of the same object — the counter grows a wait queue per level.
void broadcast() {
  std::puts("-- single-writer multiple-reader broadcast ------------------");
  constexpr int kItems = 100;
  std::vector<int> data(kItems);
  Counter published;
  std::atomic<long long> total{0};

  multithreaded_block(
      [&] {  // writer
        for (int i = 0; i < kItems; ++i) {
          data[i] = i * i;
          published.Increment(1);  // "item i is ready" for ALL readers
        }
      },
      [&] {  // reader A: item by item
        long long sum = 0;
        for (int i = 0; i < kItems; ++i) {
          published.Check(static_cast<counter_value_t>(i) + 1);
          sum += data[i];
        }
        total += sum;
      },
      [&] {  // reader B: blocks of 10 (its own granularity, §5.3)
        long long sum = 0;
        for (int i = 0; i < kItems; ++i) {
          if (i % 10 == 0) published.Check(static_cast<counter_value_t>(i) + 10);
          sum += data[i];
        }
        total += sum;
      },
      [&] {  // reader C: waits for everything, then reads
        published.Check(kItems);
        long long sum = 0;
        for (int i = 0; i < kItems; ++i) sum += data[i];
        total += sum;
      });

  std::printf("3 readers, one counter, total = %lld (expected %lld)\n",
              total.load(), 3LL * 328350);
}

// 3. Determinism (§6): the two statements run in a fixed order on every
//    schedule, because Check(1) cannot pass before the first statement's
//    Increment — and once it can pass, it always can.
void determinism() {
  std::puts("-- deterministic ordering -----------------------------------");
  for (int run = 0; run < 3; ++run) {
    Counter c;
    int x = 3;
    multithreaded_block(
        [&] {
          c.Check(0);
          x = x + 1;
          c.Increment(1);
        },
        [&] {
          c.Check(1);
          x = x * 2;
          c.Increment(1);
        });
    std::printf("run %d: x = %d (always (3+1)*2 = 8, never 3*2+1 = 7)\n",
                run, x);
  }
}

}  // namespace

int main() {
  basics();
  broadcast();
  determinism();
  std::puts("quickstart done");
  return 0;
}
