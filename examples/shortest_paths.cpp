// shortest_paths — the paper's §4 worked example as a CLI tool.
//
//   ./build/examples/shortest_paths [N] [threads] [variant]
//     N        graph size            (default 128)
//     threads  worker threads        (default 4)
//     variant  seq|barrier|cond|counter|all   (default all)
//
// Generates a random graph, solves all-pairs shortest paths with the
// requested variant(s), verifies against the sequential solution, and
// prints timing plus the counter's structural stats.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "monotonic/algos/floyd_warshall.hpp"
#include "monotonic/algos/graph.hpp"
#include "monotonic/support/stopwatch.hpp"

using namespace monotonic;

namespace {

void run_variant(const std::string& name, const SquareMatrix& edges,
                 const SquareMatrix& expected, const FwOptions& options) {
  Stopwatch sw;
  SquareMatrix result(0);
  Counter counter;
  if (name == "barrier") {
    result = fw_barrier(edges, options);
  } else if (name == "cond") {
    result = fw_condition_array(edges, options);
  } else if (name == "counter") {
    result = fw_counter_with(edges, options, counter);
  } else {
    result = fw_sequential(edges);
  }
  const double ms = sw.elapsed_ms();
  const bool ok = result == expected;
  std::printf("%-8s %8.2f ms   %s", name.c_str(), ms,
              ok ? "matches sequential" : "MISMATCH");
  if (name == "counter") {
    const auto s = counter.stats();
    std::printf("   [1 counter, %llu increments, max %llu live wait levels]",
                static_cast<unsigned long long>(s.increments),
                static_cast<unsigned long long>(s.max_live_nodes));
  } else if (name == "cond") {
    std::printf("   [%zu Condition objects]", edges.size());
  } else if (name == "barrier") {
    std::printf("   [1 barrier, %zu-way]", options.num_threads);
  }
  std::puts("");
  if (!ok) std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 128;
  const std::size_t threads =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
  const std::string variant = argc > 3 ? argv[3] : "all";
  if (n < 1 || threads < 1) {
    std::fprintf(stderr, "usage: %s [N>=1] [threads>=1] "
                         "[seq|barrier|cond|counter|all]\n",
                 argv[0]);
    return 2;
  }

  std::printf("all-pairs shortest paths: N=%zu, threads=%zu\n", n, threads);
  const auto edges = random_graph(n, {.seed = 42, .allow_negative = true});
  const auto expected = fw_sequential(edges);

  FwOptions options;
  options.num_threads = threads;

  if (variant == "all") {
    run_variant("seq", edges, expected, options);
    run_variant("barrier", edges, expected, options);
    run_variant("cond", edges, expected, options);
    run_variant("counter", edges, expected, options);
  } else {
    run_variant(variant, edges, expected, options);
  }
  return 0;
}
