// trace_demo — visualize counter dataflow with the tracing subsystem.
//
//   ./build/examples/trace_demo [items] [readers] [out.json]
//
// Runs a §5.3 writer/readers broadcast with a TracedCounter and phase
// spans, then writes a Chrome trace-event file.  Open the output in
// chrome://tracing or https://ui.perfetto.dev to see the writer's
// increments racing ahead of each reader's checks.
//
// The trace lands next to the binary (usually under build/) so the
// demo never litters the working tree; pass --out=FILE or a third
// positional to choose another path.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <vector>

#include "monotonic/core/traced_counter.hpp"
#include "monotonic/support/cli.hpp"
#include "monotonic/support/trace.hpp"
#include "monotonic/threads/structured.hpp"

using namespace monotonic;

namespace {

int run(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::size_t items = args.positional_u64(0, 64);
  const std::size_t readers = args.positional_u64(1, 3);
  const std::string default_out =
      (std::filesystem::path(argv[0]).parent_path() / "trace.json").string();
  const std::string out_path =
      args.option_str("out").value_or(args.positional_str(2, default_out));
  if (items < 1 || readers < 1) {
    std::fprintf(stderr, "usage: %s [items] [readers] [out.json] "
                         "[--out=file]\n",
                 argv[0]);
    return 2;
  }

  Tracer tracer;
  tracer.enable();

  std::vector<std::uint64_t> data(items);
  TracedCounter<> published("published", tracer);

  std::vector<std::function<void()>> bodies;
  bodies.emplace_back([&] {
    Tracer::Span span(tracer, "writer");
    for (std::size_t i = 0; i < items; ++i) {
      data[i] = i * i;
      published.Increment(1);
    }
  });
  for (std::size_t r = 0; r < readers; ++r) {
    bodies.emplace_back([&] {
      Tracer::Span span(tracer, "reader");
      std::uint64_t sum = 0;
      for (std::size_t i = 0; i < items; ++i) {
        published.Check(i + 1);
        sum += data[i];
      }
      tracer.record(TraceEventKind::kInstant, "reader-done", sum);
    });
  }
  multithreaded(std::move(bodies), Execution::kMultithreaded);

  const auto events = tracer.events();
  std::size_t fast = 0, resumed = 0;
  for (const auto& e : events) {
    if (e.kind == TraceEventKind::kCheckFast) ++fast;
    if (e.kind == TraceEventKind::kResume) ++resumed;
  }
  std::printf("%zu events: %zu increments visible, %zu fast checks, "
              "%zu resumed-after-park checks\n",
              events.size(), items, fast, resumed);

  std::ofstream out(out_path);
  out << tracer.to_chrome_json();
  std::printf("wrote %s — open in chrome://tracing or ui.perfetto.dev\n",
              out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
