// policy_sweep — drive any counter spec from the command line.
//
//   policy_sweep [spec] [--writers=N] [--items=N] [--timeout-ms=N]
//
// The spec string selects the wait policy and decorator stack at
// runtime ("hybrid+traced", "list,pool=0", "futex+batching,batch=16",
// ...); `--help` prints the grammar.  The program fans N writers over
// the counter, registers an OnReach milestone callback at every
// quarter of the total, and has the main thread follow progress with
// timed CheckFor probes — the three faces of the unified engine
// (blocking Check, timed CheckFor, async OnReach) through one
// type-erased handle.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "monotonic/core/any_counter.hpp"
#include "monotonic/core/counter_stats.hpp"
#include "monotonic/support/cli.hpp"
#include "monotonic/threads/structured.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace monotonic;
  const CliArgs args(argc, argv);
  if (args.has_flag("help")) {
    std::printf(
        "usage: %s [spec] [--writers=N] [--items=N] [--timeout-ms=N]\n"
        "spec grammar: %s\n",
        args.program().c_str(), std::string(counter_spec_help()).c_str());
    return 0;
  }
  const std::string spec = args.positional_str(0, "hybrid+traced");
  const auto writers =
      static_cast<int>(args.option_u64("writers").value_or(4));
  const counter_value_t items = args.option_u64("items").value_or(100000);
  const std::chrono::milliseconds probe_timeout(
      args.option_u64("timeout-ms").value_or(5));

  auto counter = make_counter(spec);
  std::printf("spec: %s (canonical), kind: %s\n", counter->spec().c_str(),
              std::string(to_string(counter->kind())).c_str());

  const counter_value_t total = static_cast<counter_value_t>(writers) * items;
  std::atomic<int> milestones_fired{0};
  for (int quarter = 1; quarter <= 4; ++quarter) {
    const counter_value_t level = total * quarter / 4;
    counter->OnReach(level, [&milestones_fired, quarter, level] {
      milestones_fired.fetch_add(1, std::memory_order_relaxed);
      std::printf("  milestone %d/4 reached (level %llu)\n", quarter,
                  static_cast<unsigned long long>(level));
    });
  }

  std::vector<std::function<void()>> bodies;
  for (int w = 0; w < writers; ++w) {
    bodies.emplace_back([&] {
      for (counter_value_t i = 0; i < items; ++i) counter->Increment(1);
    });
  }
  bodies.emplace_back([&] {
    int probes = 0;
    while (!counter->CheckFor(total, probe_timeout)) ++probes;
    std::printf("  reader: %d timed probes before the total landed\n",
                probes);
  });
  multithreaded(std::move(bodies), Execution::kMultithreaded);

  counter->Check(total);  // plain blocking Check: passes immediately now
  std::printf("value %llu, milestones %d\n",
              static_cast<unsigned long long>(counter->debug_value()),
              milestones_fired.load());
  // Auto-width stats table: columns line up at any magnitude, and the
  // stripe columns appear only when the spec is sharded.
  std::printf("%s", counter_stats_table(
                        {{counter->spec(), counter->stats()}})
                        .to_string()
                        .c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
