// race_detection — the §6 determinacy checker in action.
//
//   ./build/examples/race_detection
//
// Runs the paper's three example programs under the dynamic checker:
// the counter-sequenced program certifies clean, the concurrent-access
// program is flagged, and the lock-guarded program is flagged for
// *ordering* (mutual exclusion without a deterministic order).  Then
// shows the §6 methodology on a realistic pipeline: check once, strip
// the checker, ship.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "monotonic/determinacy/checked.hpp"
#include "monotonic/determinacy/recorder.hpp"
#include "monotonic/determinacy/tracked_counter.hpp"
#include "monotonic/sync/lock.hpp"
#include "monotonic/threads/structured.hpp"

using namespace monotonic;

namespace {

void report(const char* title, const RaceDetector& detector,
            bool expect_clean) {
  const auto reports = detector.reports();
  std::printf("%-38s races: %zu   %s\n", title, reports.size(),
              (reports.empty() == expect_clean) ? "(as §6 predicts)"
                                                : "(UNEXPECTED)");
  for (const auto& r : reports) {
    std::printf("    %s\n", r.to_string().c_str());
  }
}

}  // namespace

int main() {
  std::puts("§6 example programs under the determinacy checker\n");

  {  // counter-sequenced: deterministic, certified clean.
    RaceDetector detector;
    TrackedCounter<> x_count(detector);
    Checked<int> x(detector, "x", 3);
    multithreaded_block(
        [&] {
          x_count.Check(0);
          x.update([](int v) { return v + 1; });
          x_count.Increment(1);
        },
        [&] {
          x_count.Check(1);
          x.update([](int v) { return v * 2; });
          x_count.Increment(1);
        });
    report("sequenced (Check 0 / Check 1):", detector, /*expect_clean=*/true);
    std::printf("    x = %d on every schedule\n\n", x.unchecked());
  }

  {  // both Check(0): concurrent operations on x.
    RaceDetector detector;
    TrackedCounter<> x_count(detector);
    Checked<int> x(detector, "x", 3);
    multithreaded_block(
        [&] {
          x_count.Check(0);
          x.update([](int v) { return v + 1; });
          x_count.Increment(1);
        },
        [&] {
          x_count.Check(0);
          x.update([](int v) { return v * 2; });
          x_count.Increment(1);
        });
    report("racy (both Check 0):", detector, /*expect_clean=*/false);
    std::puts("");
  }

  {  // lock-guarded: exclusive but unordered.
    RaceDetector detector;
    Checked<int> x(detector, "x", 3);
    Lock x_lock;
    multithreaded_block(
        [&] {
          std::scoped_lock hold(x_lock);
          x.update([](int v) { return v + 1; });
        },
        [&] {
          std::scoped_lock hold(x_lock);
          x.update([](int v) { return v * 2; });
        });
    report("lock-guarded (unordered):", detector, /*expect_clean=*/false);
    std::puts("    the lock excludes but does not order: x is 7 or 8\n");
  }

  {  // the methodology at work: a 4-stage producer chain, checked once.
    RaceDetector detector;
    TrackedCounter<> stage_done(detector);
    std::vector<std::unique_ptr<Checked<int>>> cells;
    for (int i = 0; i < 4; ++i) {
      cells.push_back(std::make_unique<Checked<int>>(
          detector, "cell" + std::to_string(i)));
    }
    multithreaded_for(0, 4, 1, [&](int i) {
      if (i > 0) {
        stage_done.Check(static_cast<counter_value_t>(i));
        cells[i]->write(cells[i - 1]->read() + 1);
      } else {
        cells[0]->write(1);
      }
      stage_done.Increment(1);
    });
    report("4-stage chain, counter-linked:", detector, /*expect_clean=*/true);
    std::printf("    cell3 = %d; one clean run certifies ALL runs (§6)\n",
                cells[3]->unchecked());
  }
  return 0;
}
